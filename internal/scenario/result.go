package scenario

import (
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/report"
)

// ResultKind is the envelope kind of a scenario result document.
const ResultKind = "scenario.result"

// Curve is the serializable per-entity miss curve m_i(z_p).
type Curve struct {
	Entity   string    `json:"entity"`
	Sizes    []int     `json:"sizes"`
	Misses   []float64 `json:"misses"`
	Accesses float64   `json:"accesses"`
}

// EntitySummary is one allocation entity's cache statistics in a run.
type EntitySummary struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Units    int    `json:"units,omitempty"`
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
}

// RunSummary is the structured outcome of one measured execution.
type RunSummary struct {
	App         string            `json:"app"`
	Strategy    string            `json:"strategy"`
	Makespan    uint64            `json:"makespan"`
	TotalMisses uint64            `json:"total_misses"`
	L2MissRate  float64           `json:"l2_miss_rate"`
	CPIMean     float64           `json:"cpi_mean"`
	Energy      float64           `json:"energy"`
	Entities    []EntitySummary   `json:"entities"`
	TaskCycles  map[string]uint64 `json:"task_cycles"`
	TaskCPU     map[string]int    `json:"task_cpu"`
}

// Entity returns the named entity summary, or nil.
func (r *RunSummary) Entity(name string) *EntitySummary {
	for i := range r.Entities {
		if r.Entities[i].Name == name {
			return &r.Entities[i]
		}
	}
	return nil
}

// OptimizeSummary is the structured outcome of the profile+solve stage.
type OptimizeSummary struct {
	Solver     string             `json:"solver"`
	Budget     int                `json:"budget"`
	TotalUnits int                `json:"total_units"`
	Allocation map[string]int     `json:"allocation"`
	Expected   map[string]float64 `json:"expected"`
}

// ComposeEntry compares expected and simulated misses for one entity.
type ComposeEntry struct {
	Name      string  `json:"name"`
	Expected  float64 `json:"expected"`
	Simulated uint64  `json:"simulated"`
	RelDiff   float64 `json:"rel_diff"`
}

// ComposeSummary is the Figure 3 compositionality analysis.
type ComposeSummary struct {
	Entries        []ComposeEntry `json:"entries"`
	TotalSimulated uint64         `json:"total_simulated"`
	MaxRelDiff     float64        `json:"max_rel_diff"`
	MeanRelDiff    float64        `json:"mean_rel_diff"`
}

// Compositional reports the paper's criterion at the given threshold.
func (c *ComposeSummary) Compositional(threshold float64) bool {
	return c.MaxRelDiff <= threshold
}

// Result is the versioned result document of one scenario. Which
// sections are present depends on the spec's partition policy; Error is
// set (and the sections nil) when the scenario failed.
type Result struct {
	SchemaVersion int      `json:"schema_version"`
	Key           string   `json:"key,omitempty"`
	Scenario      Scenario `json:"scenario"`
	Error         string   `json:"error,omitempty"`

	Shared      *RunSummary      `json:"shared,omitempty"`
	Partitioned *RunSummary      `json:"partitioned,omitempty"`
	Optimize    *OptimizeSummary `json:"optimize,omitempty"`
	Compose     *ComposeSummary  `json:"compose,omitempty"`
	Curves      []Curve          `json:"curves,omitempty"`
}

// MissRatio returns shared misses / partitioned misses (the paper's "N
// times less misses"), or 0 when either run is missing.
func (r *Result) MissRatio() float64 {
	if r.Shared == nil || r.Partitioned == nil || r.Partitioned.TotalMisses == 0 {
		return 0
	}
	return float64(r.Shared.TotalMisses) / float64(r.Partitioned.TotalMisses)
}

// Envelope wraps the result for the machine-readable output surface.
func (r *Result) Envelope() report.Envelope {
	return report.NewEnvelope(ResultKind, r)
}

// summarizeRun converts a core run result into the document shape.
func summarizeRun(res *core.Result) *RunSummary {
	s := &RunSummary{
		App:         res.App,
		Strategy:    res.Strategy.String(),
		Makespan:    res.Platform.Makespan,
		TotalMisses: res.TotalMisses(),
		L2MissRate:  res.L2MissRate,
		CPIMean:     res.CPIMean,
		Energy:      res.Energy,
		Entities:    make([]EntitySummary, len(res.Entities)),
		TaskCycles:  make(map[string]uint64, len(res.TaskCycles)),
		TaskCPU:     make(map[string]int, len(res.TaskCPU)),
	}
	for i, e := range res.Entities {
		s.Entities[i] = EntitySummary{
			Name:     e.Name,
			Kind:     e.Kind.String(),
			Units:    e.Units,
			Accesses: e.Accesses,
			Misses:   e.Misses,
		}
	}
	for n, c := range res.TaskCycles {
		s.TaskCycles[n] = c
	}
	for n, c := range res.TaskCPU {
		s.TaskCPU[n] = c
	}
	return s
}

// summarizeOptimize converts an optimizer result into the document shape
// (curves are carried separately, only under the profile policy).
func summarizeOptimize(opt *core.OptimizeResult) *OptimizeSummary {
	s := &OptimizeSummary{
		Solver:     opt.Solver.String(),
		Budget:     opt.Budget,
		TotalUnits: opt.Allocation.TotalUnits(),
		Allocation: make(map[string]int, len(opt.Allocation)),
		Expected:   make(map[string]float64, len(opt.Expected)),
	}
	for n, u := range opt.Allocation {
		s.Allocation[n] = u
	}
	for n, m := range opt.Expected {
		s.Expected[n] = m
	}
	return s
}

// summarizeCompose converts the Figure 3 report into the document shape.
func summarizeCompose(rep *core.ComposeReport) *ComposeSummary {
	s := &ComposeSummary{
		Entries:        make([]ComposeEntry, len(rep.Entries)),
		TotalSimulated: rep.TotalSimulated,
		MaxRelDiff:     rep.MaxRelDiff,
		MeanRelDiff:    rep.MeanRelDiff,
	}
	for i, e := range rep.Entries {
		s.Entries[i] = ComposeEntry{Name: e.Name, Expected: e.Expected, Simulated: e.Simulated, RelDiff: e.RelDiff}
	}
	return s
}

// summarizeCurves converts profiled curves into the document shape.
func summarizeCurves(curves []profile.Curve) []Curve {
	out := make([]Curve, len(curves))
	for i, c := range curves {
		out[i] = Curve{
			Entity:   c.Entity,
			Sizes:    append([]int(nil), c.Sizes...),
			Misses:   append([]float64(nil), c.Misses...),
			Accesses: c.Accesses,
		}
	}
	return out
}
