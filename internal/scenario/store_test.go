package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/store"
)

// diskRunner returns a runner persisting to dir through the resilient
// wrapper, exactly as the CLI's -store-dir wiring builds it.
func diskRunner(t *testing.T, workers int, dir string) *Runner {
	t.Helper()
	ds, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewRunnerWithStore(workers, store.NewResilient(ds, store.ResilientOptions{
		Backoff: time.Microsecond,
	}))
}

// fullSpec exercises every stage kind: the optimized partition runs the
// shared baseline, the profile and optimize legs, and the partitioned
// run — four distinct durable records.
func fullSpec() Scenario {
	return Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: PartitionOptimized}
}

// TestRunnerWarmRestartFromDisk is the restart contract: a fresh runner
// over a directory populated by an earlier one re-executes *zero*
// stages — every stage of every kind is served from disk — and returns
// a bit-identical result document.
func TestRunnerWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()

	cold := diskRunner(t, 2, dir)
	r1, err := cold.Run(fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.StageRuns != 5 {
		t.Fatalf("cold run must execute all 5 stages (trace + 4), got %+v", st)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm := diskRunner(t, 2, dir) // a new process, same directory
	defer warm.Close()
	r2, err := warm.Run(fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	st = warm.Stats()
	if st.StageRuns != 0 || st.ProfileRuns != 0 || st.OptimizeRuns != 0 || st.RunRuns != 0 {
		t.Errorf("warm restart must re-execute nothing, got %+v", st)
	}
	// 3 hits, not 4: the profile stage is only ever looked up from
	// inside the optimize stage's closure, which the disk hit skips.
	if st.DiskHits != 3 {
		t.Errorf("want 3 stages served from disk, got %+v", st)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Errorf("disk-served result differs from the computed one\n%s\nvs\n%s", b1, b2)
	}
}

// TestRunnerTornWriteRecovery injects a torn write (a record cut
// mid-payload that reported success — the crash-mid-flush shape), then
// restarts: the corrupt record must be quarantined and recomputed, the
// result must be correct, and the recompute must heal the slot so a
// third runner warm-hits it.
func TestRunnerTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec() // profile-only: exactly one stage, one record

	writer := diskRunner(t, 1, dir)
	// Put ordinal 0 is the trace record; ordinal 1 tears the profile
	// record the test reads back.
	restore := faults.Activate(faults.New(7).TruncateAt(faults.SiteStorePut, 1))
	r1, err := writer.Run(spec)
	restore()
	if err != nil {
		t.Fatalf("a torn durable write must not fail the scenario: %v", err)
	}
	writer.Close()

	// "Restart": the torn record is detected on read, quarantined, and
	// transparently recomputed.
	reader := diskRunner(t, 1, dir)
	r2, err := reader.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := reader.Stats()
	if st.Quarantined != 1 {
		t.Errorf("the torn record must be quarantined, got %+v", st)
	}
	// 1 disk hit: the recompute's closure serves the (intact) trace
	// record from disk instead of recapturing.
	if st.DiskHits != 1 || st.StageRuns != 1 || st.TraceRuns != 0 {
		t.Errorf("the torn record must be recomputed, not served: %+v", st)
	}
	b1, _ := json.Marshal(r1.Curves)
	b2, _ := json.Marshal(r2.Curves)
	if string(b1) != string(b2) {
		t.Error("recomputed result differs from the original")
	}
	reader.Close()

	// The recompute overwrote the slot: a third runner warm-hits.
	healed := diskRunner(t, 1, dir)
	defer healed.Close()
	if _, err := healed.Run(spec); err != nil {
		t.Fatal(err)
	}
	st = healed.Stats()
	if st.StageRuns != 0 || st.DiskHits != 1 {
		t.Errorf("the healed slot must serve from disk, got %+v", st)
	}

	// The quarantined evidence is preserved on disk.
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	recs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".rec") {
			recs++
		}
	}
	if recs != 1 {
		t.Errorf("want 1 quarantined record on disk, found %d", recs)
	}
}

// TestRunnerDegradesToMemoryOnly is the broken-volume contract: with
// every durable read AND write failing, the breaker trips the store
// into degraded mode and every scenario still completes correctly from
// the memory layer — durable failures cost durability, never results.
func TestRunnerDegradesToMemoryOnly(t *testing.T) {
	rn := diskRunner(t, 2, t.TempDir())
	defer rn.Close()

	restore := faults.Activate(faults.New(7).
		ErrorAlways(faults.SiteStoreGet).
		ErrorAlways(faults.SiteStorePut))
	defer restore()

	// Distinct specs force fresh stages (store traffic); a repeat at the
	// end must still memo-hit from the memory layer.
	specs := []Scenario{smallSpec(), fullSpec(), smallSpec()}
	results := rn.RunBatch(specs)
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("scenario %d failed under a dead disk: %s", i, r.Error)
		}
	}
	if mode := rn.StoreMode(); mode != "degraded" {
		t.Errorf("StoreMode = %q, want degraded", mode)
	}
	st := rn.Stats()
	if st.StoreErrors == 0 {
		t.Errorf("durable failures must be counted, got %+v", st)
	}
	if st.MemoHits == 0 {
		t.Errorf("the memory layer must keep serving repeats, got %+v", st)
	}

	// Identical rerun: everything from memory, no stage re-executes.
	before := rn.Stats().StageRuns
	for i, r := range rn.RunBatch(specs) {
		if r.Error != "" {
			t.Fatalf("degraded-mode rerun scenario %d failed: %s", i, r.Error)
		}
	}
	if after := rn.Stats().StageRuns; after != before {
		t.Errorf("degraded-mode rerun re-executed %d stages", after-before)
	}
}

// TestStageDocEnvelopeGolden pins the persisted stage-document envelope:
// records written by one build are addressed and decoded by later
// builds, so the envelope's field names, order, and version byte must
// not drift without a StageDocVersion bump.
func TestStageDocEnvelopeGolden(t *testing.T) {
	b, err := encodeStage(stageProfile, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"v":1,"kind":"profile","data":[1,2]}`
	if string(b) != want {
		t.Fatalf("stage envelope drifted:\n got %s\nwant %s", b, want)
	}
}

// TestStageDocVersionAndKindMismatch checks the decode guards: a
// foreign version or a kind swap is an error (the runner treats it as a
// miss and recomputes), never a silently misread value.
func TestStageDocVersionAndKindMismatch(t *testing.T) {
	if _, err := decodeStage(stageProfile, []byte(`{"v":99,"kind":"profile","data":[]}`)); err == nil {
		t.Error("future-version document must not decode")
	}
	if _, err := decodeStage(stageOptimize, []byte(`{"v":1,"kind":"profile","data":[]}`)); err == nil {
		t.Error("kind-swapped document must not decode")
	}
	if _, err := decodeStage(stageProfile, []byte(`not json`)); err == nil {
		t.Error("garbage must not decode")
	}
}

// TestStageDocRoundTrip proves decode(encode(v)) over real stage values
// is lossless: a result served from a stored document is bit-identical
// to the freshly computed one (the warm-restart test proves the same
// end to end; this isolates the codec).
func TestStageDocRoundTrip(t *testing.T) {
	rn := NewRunner(1)
	spec := fullSpec()
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	curves, err := rn.profileStage(t.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeStage(stageProfile, curves)
	if err != nil {
		t.Fatal(err)
	}
	v, err := decodeStage(stageProfile, b)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := json.Marshal(curves)
	back, _ := json.Marshal(v)
	if string(orig) != string(back) {
		t.Errorf("profile stage value did not round-trip:\n%s\nvs\n%s", orig, back)
	}
}
