package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// smallSpec is a cheap profile-only scenario for runner tests.
func smallSpec() Scenario {
	return Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: PartitionProfile}
}

// TestRunnerMemoizesIdenticalSpecs checks the batch contract: identical
// specs in a batch simulate once and return identical documents.
func TestRunnerMemoizesIdenticalSpecs(t *testing.T) {
	rn := NewRunner(2)
	a := smallSpec()
	b := smallSpec()
	b.Name = "same-but-named" // names must not defeat memoization
	results := rn.RunBatch([]Scenario{a, b, a})
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("result %d failed: %s", i, r.Error)
		}
	}
	if results[0].Key != results[1].Key || results[1].Key != results[2].Key {
		t.Errorf("keys differ: %s %s %s", results[0].Key, results[1].Key, results[2].Key)
	}
	st := rn.Stats()
	// 2 runs: the trace capture and the profile stage it feeds.
	if st.StageRuns != 2 {
		t.Errorf("identical specs must simulate once, got %d stage runs (stats %+v)", st.StageRuns, st)
	}
	if st.MemoHits != 2 {
		t.Errorf("want 2 memo hits, got %+v", st)
	}
	c0, _ := json.Marshal(results[0].Curves)
	c2, _ := json.Marshal(results[2].Curves)
	if string(c0) != string(c2) {
		t.Error("memoized results differ from fresh ones")
	}
}

// TestRunnerWorkerCountInvariance checks results are bit-identical at
// any worker-pool bound.
func TestRunnerWorkerCountInvariance(t *testing.T) {
	spec := smallSpec()
	seq, err := NewRunner(1).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(4).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Errorf("worker count changed the result document\n%s\nvs\n%s", a, b)
	}
}

// TestRunBatchEmbedsErrors checks a failing spec doesn't fail the batch
// and keeps its slot, in order.
func TestRunBatchEmbedsErrors(t *testing.T) {
	rn := NewRunner(1)
	bad := Scenario{Workload: "no-such-workload"}
	results := rn.RunBatch([]Scenario{smallSpec(), bad})
	if results[0].Error != "" {
		t.Errorf("good spec failed: %s", results[0].Error)
	}
	if results[1].Error == "" || !strings.Contains(results[1].Error, "unknown workload") {
		t.Errorf("bad spec must carry its validation error, got %q", results[1].Error)
	}
	if results[1].Shared != nil || results[1].Curves != nil {
		t.Error("failed result must carry no sections")
	}
}

// TestSeedChangesWorkload checks the seed knob reaches the synthetic
// inputs: different seeds must produce different profiles.
func TestSeedChangesWorkload(t *testing.T) {
	rn := NewRunner(2)
	a := smallSpec()
	b := smallSpec()
	b.Seed = 9
	ra, err := rn.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := rn.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Key == rb.Key {
		t.Fatal("seed must be part of the content address")
	}
	ca, _ := json.Marshal(ra.Curves)
	cb, _ := json.Marshal(rb.Curves)
	if string(ca) == string(cb) {
		t.Error("different seeds produced identical miss curves")
	}
}
