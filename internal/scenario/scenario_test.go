package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioJSONGolden pins the wire format of a spec: the golden
// string is the contract of the Scenario API (schema version 1).
func TestScenarioJSONGolden(t *testing.T) {
	spec := Scenario{
		Name:      "custom-8cpu",
		Workload:  "mpeg2",
		Scale:     "small",
		Seed:      7,
		Partition: PartitionOptimized,
		Runs:      3,
		Solver:    "ilp",
		Sizes:     []int{1, 2, 4},
		Platform:  &PlatformSpec{NumCPUs: iptr(8), L2: CacheSpec{Sets: iptr(4096)}},
	}
	const golden = `{"name":"custom-8cpu","workload":"mpeg2","scale":"small","seed":7,"platform":{"num_cpus":8,"l2":{"sets":4096}},"partition":"optimized","runs":3,"solver":"ilp","sizes":[1,2,4]}`
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != golden {
		t.Errorf("spec wire format changed:\n got %s\nwant %s", raw, golden)
	}
	var back Scenario
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, spec)
	}
}

// TestMinimalSpecNormalizes checks that the smallest useful spec — just
// a workload — normalizes to the canonical paper defaults.
func TestMinimalSpecNormalizes(t *testing.T) {
	n, err := Scenario{Workload: "mpeg2"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Scale != "paper" || n.Partition != PartitionOptimized || n.Runs != 2 ||
		n.Solver != "mckp" || n.ProfileEngine != "stackdist" || n.ExecEngine != "merged" {
		t.Errorf("unexpected defaults: %+v", n)
	}
	if len(n.Sizes) != 8 || n.Sizes[0] != 1 || n.Sizes[7] != 128 {
		t.Errorf("unexpected default sizes: %v", n.Sizes)
	}
	if n.Platform == nil || n.Platform.NumCPUs == nil || *n.Platform.NumCPUs != 4 {
		t.Errorf("unexpected default platform: %+v", n.Platform)
	}
	// The canonical form carries a fully explicit hierarchy block: the
	// default two-level tree with a 2048-set shared partitioned l2.
	h := n.Platform.Hierarchy
	if h == nil || len(h.Levels) != 2 || h.Levels[0].Name != "l1" || h.Levels[1].Name != "l2" {
		t.Fatalf("unexpected canonical hierarchy: %+v", h)
	}
	if *h.Levels[1].Sets != 2048 || h.Levels[1].Scope != "shared" || !*h.Levels[1].Partition {
		t.Errorf("unexpected canonical l2 level: %+v", h.Levels[1])
	}
}

// TestInvalidSpecs enumerates the validation errors a bad spec must
// produce (with actionable messages).
func TestInvalidSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Scenario
		want string
	}{
		{"missing workload", Scenario{}, "missing workload"},
		{"unknown workload", Scenario{Workload: "nope"}, `unknown workload "nope"`},
		{"unknown scale", Scenario{Workload: "mpeg2", Scale: "huge"}, `unknown scale "huge"`},
		{"unknown partition", Scenario{Workload: "mpeg2", Partition: "sliced"}, "unknown partition policy"},
		{"unknown solver", Scenario{Workload: "mpeg2", Solver: "sat"}, `unknown solver "sat"`},
		{"unknown profile engine", Scenario{Workload: "mpeg2", ProfileEngine: "magic"}, "unknown profiling engine"},
		{"unknown exec engine", Scenario{Workload: "mpeg2", ExecEngine: "warp"}, "unknown execution engine"},
		{"bad size", Scenario{Workload: "mpeg2", Sizes: []int{3}}, "not a positive power of two"},
		{"negative runs", Scenario{Workload: "mpeg2", Runs: -1}, "runs -1"},
		{"future version", Scenario{Workload: "mpeg2", SpecVersion: 99}, "unsupported spec_version"},
		{"unresolved base", Scenario{Workload: "mpeg2", Base: "app1"}, "unresolved base"},
		{"alloc workload with wrong policy", Scenario{Workload: "mpeg2", Partition: PartitionShared, AllocWorkload: "mpeg2"}, "alloc_workload"},
		{"unknown alloc workload", Scenario{Workload: "mpeg2", AllocWorkload: "nope"}, `unknown alloc_workload "nope"`},
		{"bad platform", Scenario{Workload: "mpeg2", Platform: &PlatformSpec{L2: CacheSpec{Sets: iptr(3)}}}, "not a positive power of two"},
		{"explicit zero ways", Scenario{Workload: "mpeg2", Platform: &PlatformSpec{L2: CacheSpec{Ways: iptr(0)}}}, "ways 0"},
		{"bad profile level", Scenario{Workload: "mpeg2", ProfileLevel: "l9"}, `profile_level "l9"`},
		{"non-shared profile level", Scenario{Workload: "mpeg2", ProfileLevel: "l1"}, "not shared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.spec.Normalize()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestContentKey checks the content-addressing contract: names don't
// matter, defaults are canonical, every semantic field matters.
func TestContentKey(t *testing.T) {
	base := Scenario{Workload: "mpeg2", Scale: "small"}
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	named := base
	named.Name = "anything"
	if k, _ := named.Key(); k != k0 {
		t.Errorf("Name must not affect the content key")
	}

	explicit := base
	explicit.Runs = 2
	explicit.Solver = "mckp"
	explicit.Partition = PartitionOptimized
	explicit.Platform = &PlatformSpec{}
	if k, _ := explicit.Key(); k != k0 {
		t.Errorf("explicitly spelling the defaults must not change the key")
	}

	for name, mutate := range map[string]func(*Scenario){
		"seed":     func(s *Scenario) { s.Seed = 1 },
		"scale":    func(s *Scenario) { s.Scale = "paper" },
		"workload": func(s *Scenario) { s.Workload = "jpeg1-only" },
		"solver":   func(s *Scenario) { s.Solver = "ilp" },
		"exec":     func(s *Scenario) { s.ExecEngine = "word" },
		"platform": func(s *Scenario) { s.Platform = &PlatformSpec{NumCPUs: iptr(8)} },
		"runs":     func(s *Scenario) { s.Runs = 5 },
		"policy":   func(s *Scenario) { s.Partition = PartitionShared },
	} {
		m := base
		mutate(&m)
		k, err := m.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k0 {
			t.Errorf("changing %s must change the content key", name)
		}
	}
}

// TestResolveOverlay checks base-overlay semantics: present fields
// override, omitted fields inherit.
func TestResolveOverlay(t *testing.T) {
	base := Scenario{
		Name:     "app1",
		Workload: "2jpeg+canny",
		Scale:    "paper",
		Runs:     2,
		Solver:   "mckp",
		Platform: &PlatformSpec{NumCPUs: iptr(4)},
	}
	lookup := func(name string) (Scenario, bool) {
		if name == "app1" {
			return base, true
		}
		return Scenario{}, false
	}

	got, err := Resolve([]byte(`{"base":"app1","scale":"small","platform":{"num_cpus":8},"solver":"ilp"}`), lookup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "2jpeg+canny" || got.Runs != 2 {
		t.Errorf("omitted fields must inherit the base: %+v", got)
	}
	if got.Scale != "small" || got.Solver != "ilp" || *got.Platform.NumCPUs != 8 {
		t.Errorf("present fields must override the base: %+v", got)
	}
	if got.Base != "" {
		t.Errorf("resolved spec must clear Base, got %q", got.Base)
	}

	if _, err := Resolve([]byte(`{"base":"missing"}`), lookup); err == nil || !strings.Contains(err.Error(), "unknown base") {
		t.Errorf("unknown base must error, got %v", err)
	}
	if _, err := Resolve([]byte(`{"workload":`), lookup); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := Resolve([]byte(`{"base":"app1"}`), nil); err == nil {
		t.Error("base without a lookup must error")
	}

	// Without a base, Resolve is a plain parse.
	got, err = Resolve([]byte(`{"workload":"mpeg2"}`), nil)
	if err != nil || got.Workload != "mpeg2" {
		t.Errorf("plain parse failed: %+v, %v", got, err)
	}
}

// TestPlatformSpecRoundTrip checks PlatformSpecOf ∘ Config is the
// identity on the default-reachable configurations the specs use.
func TestPlatformSpecRoundTrip(t *testing.T) {
	q := int64(10_000)
	spec := PlatformSpec{NumCPUs: iptr(8), L2: CacheSpec{Sets: iptr(4096)}, Sched: SchedSpec{Quantum: &q}}
	pc, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	geom := pc.PartitionGeom()
	if pc.NumCPUs != 8 || geom.Sets != 4096 || pc.Sched.Quantum != 10_000 {
		t.Fatalf("overrides not applied: %+v", pc)
	}
	if pc.Topology.Levels[0].Sets != 64 || geom.Ways != 4 || pc.Bus.Banks != 4 {
		t.Fatalf("defaults not kept: %+v", pc)
	}
	back := PlatformSpecOf(pc)
	pc2, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pc2, pc) {
		t.Errorf("PlatformSpecOf round trip drifted:\n got %+v\nwant %+v", pc2, pc)
	}
}
