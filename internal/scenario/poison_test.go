package scenario

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// registerFlaky registers a workload whose factory fails the first
// `failures` times and then behaves like jpeg1-only. Returns a counter
// of successful factory builds.
func registerFlaky(t *testing.T, name string, failures int32) *int32 {
	t.Helper()
	base, ok := workloads.Lookup("jpeg1-only")
	if !ok {
		t.Fatal("jpeg1-only not registered")
	}
	var remaining = failures
	var builds int32
	err := workloads.Register(name, func(bc workloads.BuildConfig) core.Workload {
		w := base(bc)
		inner := w.Factory
		w.Factory = func() (*core.App, error) {
			if atomic.AddInt32(&remaining, -1) >= 0 {
				return nil, errors.New("transient build failure")
			}
			atomic.AddInt32(&builds, 1)
			return inner()
		}
		return w
	})
	if err != nil {
		t.Fatal(err)
	}
	return &builds
}

// TestStageErrorNotMemoized is the regression test for the memo
// error-poisoning bug: a transient stage failure (here a workload
// factory that fails once, then succeeds) must NOT be cached under the
// stage memo — the next request on a long-lived shared runner retries
// instead of replaying the stale error forever.
func TestStageErrorNotMemoized(t *testing.T) {
	registerFlaky(t, "flaky-once", 1)
	rn := NewRunner(1)
	spec := Scenario{Workload: "flaky-once", Scale: "small", Runs: 1, Partition: PartitionProfile}

	if _, err := rn.Run(spec); err == nil || !strings.Contains(err.Error(), "transient build failure") {
		t.Fatalf("first run must surface the transient failure, got %v", err)
	}
	res, err := rn.Run(spec)
	if err != nil {
		t.Fatalf("second run must retry after the transient failure, not replay the memoized error: %v", err)
	}
	if len(res.Curves) == 0 {
		t.Fatal("retried run produced no curves")
	}

	st := rn.Stats()
	// Per attempt the trace stage fails first and the profile stage
	// waiting on it fails with it: 2 failed + 2 retried stage runs.
	if st.StageRuns != 4 {
		t.Errorf("want 4 stage runs (2 failed + 2 retried), got %+v", st)
	}
	if st.StageErrors != 2 {
		t.Errorf("want 2 evicted error stages, got %+v", st)
	}
	if st.MemoHits != 0 {
		t.Errorf("a failed stage must not serve memo hits, got %+v", st)
	}

	// The healthy result, in turn, IS memoized.
	if _, err := rn.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st := rn.Stats(); st.StageRuns != 4 || st.MemoHits != 1 {
		t.Errorf("healthy result must be served from the memo: %+v", st)
	}
}

// TestRunBatchContextCancel checks a canceled context skips scenarios
// not yet started: their result slots stay nil and no simulation runs
// for them.
func TestRunBatchContextCancel(t *testing.T) {
	builds := registerFlaky(t, "counted-ctx", 0)
	rn := NewRunner(1)
	spec := Scenario{Workload: "counted-ctx", Scale: "small", Runs: 1, Partition: PartitionProfile}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := rn.RunBatchContext(ctx, []Scenario{spec, spec, spec})
	for i, r := range results {
		if r != nil {
			t.Errorf("result %d must be nil under a canceled context, got %+v", i, r)
		}
	}
	if n := atomic.LoadInt32(builds); n != 0 {
		t.Errorf("canceled batch must not build workloads, built %d", n)
	}
	if st := rn.Stats(); st.StageRuns != 0 {
		t.Errorf("canceled batch must not run stages: %+v", st)
	}
}

// TestRunContextCancelFailsStages checks a context canceled mid-batch
// surfaces as a stage failure that is not memoized (later runs with a
// live context succeed).
func TestRunContextCancelFailsStages(t *testing.T) {
	rn := NewRunner(1)
	spec := Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: PartitionProfile}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := rn.RunContext(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Error == "" {
		t.Error("canceled run must record its error in the result document")
	}
	// A later request with a live context must not see a poisoned memo.
	if _, err := rn.Run(spec); err != nil {
		t.Fatalf("run after cancellation failed: %v", err)
	}
}
