package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Runner validates scenarios and executes them with content-addressed
// memoization. Memoization is per pipeline *stage* (profiling, the
// profile+solve leg, each measured execution), keyed by a hash of
// exactly the spec fields that stage depends on — so identical specs in
// a batch simulate once, and different scenarios sharing a stage (every
// command of the legacy CLI surface reuses the two applications'
// studies; the solo-composition scenario borrows the full application's
// optimization) share the simulation too. Every simulation is
// deterministic at any worker count, so memoized and fresh results are
// bit-identical.
//
// A Runner is safe for concurrent use; the serve mode shares one across
// requests, turning the memo into a result cache.
type Runner struct {
	// workers bounds each fan-out stage (0 = GOMAXPROCS, 1 = fully
	// sequential), exactly like experiments.Config.Workers.
	workers int

	mu   sync.Mutex
	memo map[string]*memoEntry

	stageRuns uint64 // stages actually executed
	memoHits  uint64 // stage lookups served from the memo
}

// memoEntry is a single-flight memo slot: the first caller computes,
// concurrent callers block on the sync.Once, later callers reuse.
type memoEntry struct {
	once sync.Once
	val  interface{}
	err  error
}

// NewRunner returns a Runner with the given worker-pool bound.
func NewRunner(workers int) *Runner {
	return &Runner{workers: workers, memo: make(map[string]*memoEntry)}
}

// Workers returns the runner's worker-pool knob (0 = GOMAXPROCS).
func (r *Runner) Workers() int { return r.workers }

// TrimMemo drops the whole memo when it holds more than max entries,
// bounding a long-lived runner's memory. In-flight stages keep their
// entry pointers and finish normally; later requests recompute — every
// simulation is deterministic, so trimming never changes results.
func (r *Runner) TrimMemo(max int) {
	r.mu.Lock()
	if len(r.memo) > max {
		r.memo = make(map[string]*memoEntry)
	}
	r.mu.Unlock()
}

// Stats reports memoization effectiveness.
type Stats struct {
	StageRuns uint64 // pipeline stages executed
	MemoHits  uint64 // stage requests served from the memo
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	return Stats{
		StageRuns: atomic.LoadUint64(&r.stageRuns),
		MemoHits:  atomic.LoadUint64(&r.memoHits),
	}
}

// stage runs f once per key and memoizes its result.
func (r *Runner) stage(key string, f func() (interface{}, error)) (interface{}, error) {
	r.mu.Lock()
	e, ok := r.memo[key]
	if !ok {
		e = &memoEntry{}
		r.memo[key] = e
	} else {
		atomic.AddUint64(&r.memoHits, 1)
	}
	r.mu.Unlock()
	e.once.Do(func() {
		atomic.AddUint64(&r.stageRuns, 1)
		e.val, e.err = f()
	})
	return e.val, e.err
}

// profileKey captures exactly what the profiling stage depends on.
type profileKey struct {
	Workload string       `json:"workload"`
	Scale    string       `json:"scale"`
	Seed     uint64       `json:"seed"`
	Platform PlatformSpec `json:"platform"`
	Exec     string       `json:"exec"`
	Runs     int          `json:"runs"`
	Engine   string       `json:"engine"`
	Sizes    []int        `json:"sizes"`
}

func (r *Runner) profileStage(s Scenario) ([]profile.Curve, error) {
	key := "profile|" + hashJSON(profileKey{
		Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
		Platform: *s.Platform, Exec: s.ExecEngine,
		Runs: s.Runs, Engine: s.ProfileEngine, Sizes: s.Sizes,
	})
	v, err := r.stage(key, func() (interface{}, error) {
		w, err := workloads.Build(s.Workload, s.buildConfig())
		if err != nil {
			return nil, err
		}
		oc, err := s.optimizeConfig(r.workers)
		if err != nil {
			return nil, err
		}
		return core.Profile(w, oc)
	})
	if err != nil {
		return nil, err
	}
	return v.([]profile.Curve), nil
}

// optimizeKey extends profileKey with the solver choice.
type optimizeKey struct {
	profileKey
	Solver string `json:"solver"`
}

func (r *Runner) optimizeStage(s Scenario) (*core.OptimizeResult, error) {
	key := "optimize|" + hashJSON(optimizeKey{
		profileKey: profileKey{
			Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
			Platform: *s.Platform, Exec: s.ExecEngine,
			Runs: s.Runs, Engine: s.ProfileEngine, Sizes: s.Sizes,
		},
		Solver: s.Solver,
	})
	v, err := r.stage(key, func() (interface{}, error) {
		curves, err := r.profileStage(s)
		if err != nil {
			return nil, err
		}
		w, err := workloads.Build(s.Workload, s.buildConfig())
		if err != nil {
			return nil, err
		}
		app, err := w.Factory()
		if err != nil {
			return nil, err
		}
		oc, err := s.optimizeConfig(r.workers)
		if err != nil {
			return nil, err
		}
		return core.OptimizeFromCurves(app, curves, oc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.OptimizeResult), nil
}

// runKey captures exactly what one measured execution depends on. The
// partitioned run's allocation is identified by the key of the optimize
// stage that produced it, not its content.
type runKey struct {
	Workload  string       `json:"workload"`
	Scale     string       `json:"scale"`
	Seed      uint64       `json:"seed"`
	Platform  PlatformSpec `json:"platform"`
	Exec      string       `json:"exec"`
	Strategy  string       `json:"strategy"`
	Migration bool         `json:"migration"`
	AllocKey  string       `json:"alloc_key,omitempty"`
}

func (r *Runner) runStage(s Scenario, strat core.Strategy, alloc core.Allocation, allocKey string) (*core.Result, error) {
	key := "run|" + hashJSON(runKey{
		Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
		Platform: *s.Platform, Exec: s.ExecEngine,
		Strategy: strat.String(), Migration: s.Migration, AllocKey: allocKey,
	})
	v, err := r.stage(key, func() (interface{}, error) {
		w, err := workloads.Build(s.Workload, s.buildConfig())
		if err != nil {
			return nil, err
		}
		pc, err := s.platformConfig()
		if err != nil {
			return nil, err
		}
		pc.Sched.AllowMigration = s.Migration
		rc := core.RunConfig{Platform: pc, Strategy: strat, Alloc: alloc}
		return core.Run(w, rc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Result), nil
}

// allocSpec returns the spec whose optimization provides the partitioned
// run's allocation: the scenario itself, or its AllocWorkload stand-in.
func allocSpec(s Scenario) Scenario {
	if s.AllocWorkload == "" {
		return s
	}
	a := s
	a.Workload = s.AllocWorkload
	a.AllocWorkload = ""
	return a
}

// allocStageKey mirrors optimizeStage's key derivation, for runKey.
func allocStageKey(s Scenario) string {
	a := allocSpec(s)
	return hashJSON(optimizeKey{
		profileKey: profileKey{
			Workload: a.Workload, Scale: a.Scale, Seed: a.Seed,
			Platform: *a.Platform, Exec: a.ExecEngine,
			Runs: a.Runs, Engine: a.ProfileEngine, Sizes: a.Sizes,
		},
		Solver: a.Solver,
	})
}

// Run normalizes and executes one scenario. The returned Result always
// carries the normalized spec and content key when normalization
// succeeded; on a pipeline failure the error is returned and also
// recorded in Result.Error, so batch consumers can use either form.
func (r *Runner) Run(s Scenario) (*Result, error) {
	n, err := s.Normalize()
	if err != nil {
		return &Result{SchemaVersion: report.SchemaVersion, Scenario: s, Error: err.Error()}, err
	}
	keyed := n
	keyed.Name = ""
	res := &Result{SchemaVersion: report.SchemaVersion, Key: hashJSON(keyed), Scenario: n}
	if err := r.execute(n, res); err != nil {
		res.Error = err.Error()
		res.Shared, res.Partitioned, res.Optimize, res.Compose, res.Curves = nil, nil, nil, nil, nil
		return res, err
	}
	return res, nil
}

// execute fills the result sections the partition policy calls for.
func (r *Runner) execute(n Scenario, res *Result) error {
	switch n.Partition {
	case PartitionProfile:
		curves, err := r.profileStage(n)
		if err != nil {
			return err
		}
		res.Curves = summarizeCurves(curves)
		return nil

	case PartitionOptimize:
		opt, err := r.optimizeStage(n)
		if err != nil {
			return err
		}
		res.Optimize = summarizeOptimize(opt)
		return nil

	case PartitionShared:
		shared, err := r.runStage(n, core.Shared, nil, "")
		if err != nil {
			return err
		}
		res.Shared = summarizeRun(shared)
		return nil

	case PartitionOptimized:
		// The shared baseline and the profile+optimize leg are
		// independent simulations and run concurrently, exactly like the
		// legacy study pipeline; the partitioned run needs the optimized
		// allocation and follows.
		var (
			shared *core.Result
			opt    *core.OptimizeResult
		)
		legs := []func() error{
			func() error {
				var err error
				shared, err = r.runStage(n, core.Shared, nil, "")
				if err != nil {
					return fmt.Errorf("scenario: shared run: %w", err)
				}
				return nil
			},
			func() error {
				var err error
				opt, err = r.optimizeStage(allocSpec(n))
				if err != nil {
					return fmt.Errorf("scenario: optimize: %w", err)
				}
				return nil
			},
		}
		if err := parallel.Do(parallel.Workers(r.workers), len(legs), func(i int) error { return legs[i]() }); err != nil {
			return err
		}
		part, err := r.runStage(n, core.Partitioned, opt.Allocation, allocStageKey(n))
		if err != nil {
			return fmt.Errorf("scenario: partitioned run: %w", err)
		}
		res.Shared = summarizeRun(shared)
		res.Partitioned = summarizeRun(part)
		res.Optimize = summarizeOptimize(opt)
		res.Compose = summarizeCompose(core.CompareExpectedSimulated(opt.Expected, part))
		return nil
	}
	return fmt.Errorf("scenario: unknown partition policy %q", n.Partition)
}

// RunBatch executes a batch over the worker pool. Results come back in
// input order; a scenario's failure is recorded in its Result.Error
// without failing the batch (the returned slice always has len(specs)
// non-nil entries).
func (r *Runner) RunBatch(specs []Scenario) []*Result {
	results := make([]*Result, len(specs))
	parallel.Do(parallel.Workers(r.workers), len(specs), func(i int) error {
		results[i], _ = r.Run(specs[i])
		return nil
	})
	return results
}
