package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// Runner validates scenarios and executes them with content-addressed
// memoization. Memoization is per pipeline *stage* (profiling, the
// profile+solve leg, each measured execution), keyed by a hash of
// exactly the spec fields that stage depends on — so identical specs in
// a batch simulate once, and different scenarios sharing a stage (every
// command of the legacy CLI surface reuses the two applications'
// studies; the solo-composition scenario borrows the full application's
// optimization) share the simulation too. Every simulation is
// deterministic at any worker count, so memoized and fresh results are
// bit-identical.
//
// A Runner is safe for concurrent use; the serve mode shares one across
// requests, turning the memo into a result cache.
//
// The memo is layered. In front, a single-flight table tracks stages
// currently computing, so concurrent identical lookups — including
// concurrent cold reads of the same durable record — collapse into one.
// Behind it, completed stage results live as versioned encoded
// documents in an in-memory LRU store, and optionally in a durable
// store (the crash-safe on-disk CAS of internal/store): a memory miss
// consults the durable layer before simulating, so warm results survive
// process restarts. Durable-layer failures are counted, retried and —
// when the medium keeps failing — degraded away by the store layer;
// they never fail a scenario.
type Runner struct {
	// workers bounds each fan-out stage (0 = GOMAXPROCS, 1 = fully
	// sequential), exactly like experiments.Config.Workers.
	workers int

	mu       sync.Mutex
	inflight map[string]*memoEntry

	mem     store.Store // completed stage documents, LRU-bounded
	durable store.Store // optional crash-safe layer; nil = memory-only

	// decoded caches the live (decoded) value of completed stages next
	// to the encoded documents in mem, so concurrent executions share
	// one decoded trace / curve set / result instead of re-decoding the
	// stage document on every memo hit — for a 32-point sweep the same
	// multi-megabyte trace would otherwise be decoded once per point.
	// Keys are content addresses, so a decoded value can never go stale;
	// entries are evicted together with their documents (decode faults,
	// TrimMemo). The invariant making the sharing safe: stage values are
	// immutable once computed — every consumer treats them read-only,
	// which the differential suite (sweep-vs-sequential bit-identity)
	// pins. Trace-kind hits still pass through the trace.read fault
	// site, preserving the corrupt-trace recapture path.
	decoded sync.Map // composite stage key → decoded stage value

	stageRuns    uint64 // stages actually executed
	memoHits     uint64 // stage lookups served from the in-process memo
	stageErrors  uint64 // stages that failed (and were evicted for retry)
	stagePanics  uint64 // panics recovered and converted to StagePanicError
	profileRuns  uint64 // profile stages executed
	optimizeRuns uint64 // optimize stages executed
	runRuns      uint64 // measured-execution stages executed
	traceRuns    uint64 // trace captures executed (functional runs)
	traceHits    uint64 // trace lookups served without capturing (any layer)
	traceBytes   uint64 // encoded bytes of traces captured
	diskHits     uint64 // stage lookups served from the durable store
	diskMisses   uint64 // durable-store lookups that found no record
	storeErrors  uint64 // durable-store operations that failed (post-retry)
}

// StagePanicError is a panic recovered inside a pipeline stage (or a
// worker executing one), converted into a structured error: the stage
// kind, the stage's content-address key, the recovered value, and the
// stack captured at recovery. It propagates to every single-flight
// waiter of the stage, the memo entry is evicted (a retry starts
// fresh), and batch consumers see it as the scenario's per-result
// "error" field — the process, and every other in-flight scenario,
// keeps running.
type StagePanicError struct {
	Stage string      // stage kind ("profile", "optimize", "run", or "scenario" outside any stage)
	Key   string      // the stage's memo key (content address), if any
	Value interface{} // the recovered panic value
	Stack string      // stack captured at recovery
}

// Error implements error.
func (e *StagePanicError) Error() string {
	if e.Key == "" {
		return fmt.Sprintf("scenario: panic in %s: %v", e.Stage, e.Value)
	}
	return fmt.Sprintf("scenario: panic in %s stage (key %s): %v", e.Stage, e.Key, e.Value)
}

// memoEntry is a single-flight memo slot: the first caller computes,
// concurrent callers block on the sync.Once, later callers reuse.
type memoEntry struct {
	once sync.Once
	val  interface{}
	err  error
}

// NewRunner returns a memory-only Runner with the given worker-pool
// bound.
func NewRunner(workers int) *Runner {
	return NewRunnerWithStore(workers, nil)
}

// NewRunnerWithStore returns a Runner whose completed stage results are
// additionally persisted to (and warm-served from) the given durable
// store. Pass the disk CAS wrapped in store.NewResilient so transient
// I/O errors are retried and a persistently failing medium degrades to
// memory-only operation instead of failing scenarios. nil means
// memory-only.
func NewRunnerWithStore(workers int, durable store.Store) *Runner {
	return &Runner{
		workers:  workers,
		inflight: make(map[string]*memoEntry),
		mem:      store.NewMemory(0),
		durable:  durable,
	}
}

// Workers returns the runner's worker-pool knob (0 = GOMAXPROCS).
func (r *Runner) Workers() int { return r.workers }

// StoreMode reports the runner's persistence mode: "memory" without a
// durable store, "disk" with one, and "degraded" once a failing medium
// has been disabled by the store layer's breaker.
func (r *Runner) StoreMode() string {
	if r.durable == nil {
		return "memory"
	}
	if m, ok := r.durable.(store.Moder); ok {
		return m.Mode()
	}
	return "disk"
}

// TrimMemo bounds the in-memory result store to at most max completed
// entries, evicting least-recently-used records. Stages still in flight
// are tracked separately and are never evicted; evicted results remain
// in the durable store (when configured) and otherwise recompute —
// every simulation is deterministic, so trimming never changes results.
func (r *Runner) TrimMemo(max int) {
	if t, ok := r.mem.(store.Trimmer); ok {
		t.Trim(max)
	}
	// Drop the decoded side-cache wholesale: it must not outgrow the
	// trimmed document store, and content-addressed values repopulate on
	// the next hit (a decode, not a recompute).
	r.decoded.Range(func(k, _ any) bool {
		r.decoded.Delete(k)
		return true
	})
}

// Close releases the durable store, if any.
func (r *Runner) Close() error {
	if r.durable == nil {
		return nil
	}
	return r.durable.Close()
}

// Stats reports memoization effectiveness. All counters are monotonic,
// so the delta of two snapshots attributes stage work to the requests
// issued in between (the sweep aggregate records exactly that).
type Stats struct {
	StageRuns    uint64 `json:"stage_runs"`             // pipeline stages executed
	MemoHits     uint64 `json:"memo_hits"`              // stage requests served from the memo
	StageErrors  uint64 `json:"stage_errors,omitempty"` // failed stages (evicted, so later requests retry)
	StagePanics  uint64 `json:"stage_panics,omitempty"` // panics recovered into StagePanicError
	ProfileRuns  uint64 `json:"profile_runs"`           // profile stages executed
	OptimizeRuns uint64 `json:"optimize_runs"`          // optimize stages executed
	RunRuns      uint64 `json:"run_runs"`               // measured executions performed
	TraceRuns    uint64 `json:"trace_runs"`             // trace captures executed (functional runs)
	TraceHits    uint64 `json:"trace_hits"`             // trace requests served without capturing
	TraceBytes   uint64 `json:"trace_bytes,omitempty"`  // encoded bytes of traces captured
	DiskHits     uint64 `json:"disk_hits,omitempty"`    // stage requests served from the durable store
	DiskMisses   uint64 `json:"disk_misses,omitempty"`  // durable lookups that found no record
	StoreErrors  uint64 `json:"store_errors,omitempty"` // durable-store operations failed post-retry (never fatal)
	Quarantined  uint64 `json:"quarantined,omitempty"`  // corrupt durable records detected and quarantined
}

// Delta returns the counter-wise difference s - before: the stage work
// attributable to the requests issued between the two snapshots (the
// sweep and explore aggregates record exactly this).
func (s Stats) Delta(before Stats) Stats {
	return Stats{
		StageRuns:    s.StageRuns - before.StageRuns,
		MemoHits:     s.MemoHits - before.MemoHits,
		StageErrors:  s.StageErrors - before.StageErrors,
		StagePanics:  s.StagePanics - before.StagePanics,
		ProfileRuns:  s.ProfileRuns - before.ProfileRuns,
		OptimizeRuns: s.OptimizeRuns - before.OptimizeRuns,
		RunRuns:      s.RunRuns - before.RunRuns,
		TraceRuns:    s.TraceRuns - before.TraceRuns,
		TraceHits:    s.TraceHits - before.TraceHits,
		TraceBytes:   s.TraceBytes - before.TraceBytes,
		DiskHits:     s.DiskHits - before.DiskHits,
		DiskMisses:   s.DiskMisses - before.DiskMisses,
		StoreErrors:  s.StoreErrors - before.StoreErrors,
		Quarantined:  s.Quarantined - before.Quarantined,
	}
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	s := Stats{
		StageRuns:    atomic.LoadUint64(&r.stageRuns),
		MemoHits:     atomic.LoadUint64(&r.memoHits),
		StageErrors:  atomic.LoadUint64(&r.stageErrors),
		StagePanics:  atomic.LoadUint64(&r.stagePanics),
		ProfileRuns:  atomic.LoadUint64(&r.profileRuns),
		OptimizeRuns: atomic.LoadUint64(&r.optimizeRuns),
		RunRuns:      atomic.LoadUint64(&r.runRuns),
		TraceRuns:    atomic.LoadUint64(&r.traceRuns),
		TraceHits:    atomic.LoadUint64(&r.traceHits),
		TraceBytes:   atomic.LoadUint64(&r.traceBytes),
		DiskHits:     atomic.LoadUint64(&r.diskHits),
		DiskMisses:   atomic.LoadUint64(&r.diskMisses),
		StoreErrors:  atomic.LoadUint64(&r.storeErrors),
	}
	if sp, ok := r.durable.(store.StatsProvider); ok {
		s.Quarantined = sp.Stats().Quarantined
	}
	return s
}

// Stage kinds, also the memo-key prefixes.
const (
	stageProfile  = "profile"
	stageOptimize = "optimize"
	stageRun      = "run"
	stageTrace    = "trace"
)

// noteHit counts a stage lookup served without executing the stage.
func (r *Runner) noteHit(kind string) {
	atomic.AddUint64(&r.memoHits, 1)
	if kind == stageTrace {
		atomic.AddUint64(&r.traceHits, 1)
	}
}

// stage serves one pipeline-stage lookup through the memo layers:
// the completed-result stores first (memory, then the durable layer),
// then a single-flight execution of f. Concurrent lookups of one key —
// whether the work is a simulation or a cold durable read — collapse
// into one computation whose result every waiter shares, so
// concurrency semantics are independent of the storage backing.
//
// Errors are NOT memoized: a failed stage evicts its single-flight
// entry (nothing is stored), so a transient failure cannot poison the
// key for the lifetime of a long-lived shared runner — the next request
// retries. Callers that arrived while the failing computation was in
// flight still all observe its error (they were waiting on it), but any
// later lookup starts fresh.
//
// A canceled ctx fails the lookup before it touches the memo; it never
// aborts a computation already in flight (simulations are deterministic
// and their results are shared, so in-flight work is never wasted).
func (r *Runner) stage(ctx context.Context, kind, key string, f func() (interface{}, error)) (interface{}, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key = kind + "|" + key
	var (
		e       *memoEntry
		waiting bool
	)
	for {
		// Decoded fast path: serve the shared live value with no store
		// lookup and no decode. Trace reads keep their fault site — an
		// injected read error behaves exactly like a corrupt document
		// (counted, both layers evicted, recompute), so the recapture
		// semantics are independent of which layer served the trace.
		if v, ok := r.decoded.Load(key); ok {
			if kind == stageTrace {
				if err := faults.Point(faults.SiteTraceRead); err != nil {
					atomic.AddUint64(&r.storeErrors, 1)
					r.decoded.Delete(key)
					r.mem.Delete(key)
				} else {
					r.noteHit(kind)
					return v, nil
				}
			} else {
				r.noteHit(kind)
				return v, nil
			}
		}
		r.mu.Lock()
		e, waiting = r.inflight[key]
		var cached []byte
		if !waiting {
			if b, err := r.mem.Get(key); err == nil {
				cached = b
			} else {
				e = &memoEntry{}
				r.inflight[key] = e
			}
		}
		r.mu.Unlock()
		if cached == nil {
			break
		}
		v, derr := decodeStage(kind, cached)
		if derr == nil {
			r.decoded.Store(key, v)
			r.noteHit(kind)
			return v, nil
		}
		// The memory layer held an undecodable document (a corrupt
		// trace surfaced by the trace.read fault site, or version skew
		// from a live upgrade). Treat it exactly like the durable layer
		// does: count it, evict the record, and loop back to recompute —
		// corruption costs a re-run, never a failed scenario.
		atomic.AddUint64(&r.storeErrors, 1)
		r.mem.Delete(key)
	}

	if waiting {
		r.noteHit(kind)
	}
	e.once.Do(func() {
		if v, ok := r.loadDurable(kind, key); ok {
			e.val = v
			return
		}
		atomic.AddUint64(&r.stageRuns, 1)
		switch kind {
		case stageProfile:
			atomic.AddUint64(&r.profileRuns, 1)
		case stageOptimize:
			atomic.AddUint64(&r.optimizeRuns, 1)
		case stageRun:
			atomic.AddUint64(&r.runRuns, 1)
		case stageTrace:
			atomic.AddUint64(&r.traceRuns, 1)
		}
		e.val, e.err = r.guarded(kind, key, f)
		if e.err == nil {
			r.persist(kind, key, e.val)
		}
	})
	// The entry's work is done (stored on success): retire it from the
	// single-flight table. The pointer comparison keeps this idempotent
	// across the entry's concurrent waiters and never deletes a fresh
	// retry entry installed in the meantime; the error counter fires
	// once per failed execution, mirroring the eviction-for-retry
	// semantics (nothing was stored, so the next lookup starts fresh).
	r.mu.Lock()
	if r.inflight[key] == e {
		delete(r.inflight, key)
		if e.err != nil {
			atomic.AddUint64(&r.stageErrors, 1)
		}
	}
	r.mu.Unlock()
	return e.val, e.err
}

// loadDurable consults the durable store for a completed stage result,
// promoting a hit into the memory store. Store failures are counted and
// swallowed — the caller falls through to simulation; a document of an
// unknown version (or a kind mismatch) is treated the same way, and the
// recompute overwrites it.
func (r *Runner) loadDurable(kind, key string) (interface{}, bool) {
	if r.durable == nil {
		return nil, false
	}
	b, err := r.durable.Get(key)
	switch {
	case err == nil:
		v, derr := decodeStage(kind, b)
		if derr != nil {
			atomic.AddUint64(&r.storeErrors, 1)
			r.durable.Delete(key)
			return nil, false
		}
		atomic.AddUint64(&r.diskHits, 1)
		if kind == stageTrace {
			atomic.AddUint64(&r.traceHits, 1)
		}
		r.mem.Put(key, b)
		r.decoded.Store(key, v)
		return v, true
	case errors.Is(err, store.ErrNotFound):
		atomic.AddUint64(&r.diskMisses, 1)
	case errors.Is(err, store.ErrDegraded):
		// The breaker tripped: memory-only mode, nothing to count per op.
	default:
		atomic.AddUint64(&r.storeErrors, 1)
	}
	return nil, false
}

// persist encodes a completed stage value into its versioned document
// and stores it — always in memory, and in the durable layer when one
// is configured. Durable failures are counted, never propagated: a
// broken volume costs durability, not results.
func (r *Runner) persist(kind, key string, v interface{}) {
	b, err := encodeStage(kind, v)
	if err != nil {
		// Stage values are plain structs of scalars, slices and maps;
		// encoding cannot fail in practice. Count it and serve from the
		// single-flight value alone.
		atomic.AddUint64(&r.storeErrors, 1)
		return
	}
	r.mem.Put(key, b)
	r.decoded.Store(key, v)
	if r.durable == nil {
		return
	}
	if err := r.durable.Put(key, b); err != nil && !errors.Is(err, store.ErrDegraded) {
		atomic.AddUint64(&r.storeErrors, 1)
	}
}

// guarded executes one stage body with panic containment: a panic on
// this goroutine is recovered here, and a panic inside a nested
// parallel fan-out (profiling repetitions, study legs) arrives already
// recovered as the pool's *parallel.PanicError — both are converted to
// a *StagePanicError carrying the stage kind, memo key, recovered value
// and stack. The error flows to every single-flight waiter and evicts
// the memo entry exactly like any stage failure, so a panicked stage is
// retried by the next request instead of poisoning the key. The
// fault-injection point fires once per stage execution (a no-op outside
// the fault suite).
func (r *Runner) guarded(kind, key string, f func() (interface{}, error)) (v interface{}, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			atomic.AddUint64(&r.stagePanics, 1)
			v, err = nil, &StagePanicError{Stage: kind, Key: key, Value: rec, Stack: string(debug.Stack())}
		}
	}()
	if err := faults.Point(faults.SiteStage + kind); err != nil {
		return nil, err
	}
	v, err = f()
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		atomic.AddUint64(&r.stagePanics, 1)
		v, err = nil, &StagePanicError{Stage: kind, Key: key, Value: pe.Value, Stack: string(pe.Stack)}
	}
	return v, err
}

// traceKey captures exactly what the capture stage depends on: the
// workload identity alone. A recorded trace is platform-, engine- and
// strategy-independent (capture happens at the Ctx API boundary, above
// all timing — see internal/tracefile), so one trace serves the
// profiler and every measured execution of every scenario sharing the
// workload.
type traceKey struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale"`
	Seed     uint64 `json:"seed"`
}

// traceStageKey hashes what the capture stage depends on.
func traceStageKey(s Scenario) string {
	return hashJSON(traceKey{Workload: s.Workload, Scale: s.Scale, Seed: s.Seed})
}

// traceStage serves the scenario's recorded trace through the memo
// layers, capturing it from one live functional run on first use.
func (r *Runner) traceStage(ctx context.Context, s Scenario) (*tracefile.Trace, error) {
	v, err := r.stage(ctx, stageTrace, traceStageKey(s), func() (interface{}, error) {
		w, err := workloads.Build(s.Workload, s.buildConfig())
		if err != nil {
			return nil, err
		}
		t, err := tracefile.Capture(w, tracefile.Meta{Workload: s.Workload, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		atomic.AddUint64(&r.traceBytes, uint64(t.Size()))
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*tracefile.Trace), nil
}

// workload returns the factory the pipeline stages build app instances
// from: a replay workload backed by the trace stage (the default — a
// warm trace makes every later stage skip functional execution
// entirely), or the live functional workload under trace mode "live".
func (r *Runner) workload(ctx context.Context, s Scenario) (core.Workload, error) {
	if s.Trace == TraceLive {
		return workloads.Build(s.Workload, s.buildConfig())
	}
	t, err := r.traceStage(ctx, s)
	if err != nil {
		return core.Workload{}, err
	}
	return t.Workload(s.Workload), nil
}

// profileKey captures exactly what the profiling stage depends on.
type profileKey struct {
	Workload string       `json:"workload"`
	Scale    string       `json:"scale"`
	Seed     uint64       `json:"seed"`
	Platform PlatformSpec `json:"platform"`
	Exec     string       `json:"exec"`
	Runs     int          `json:"runs"`
	Engine   string       `json:"engine"`
	Level    string       `json:"level,omitempty"`
	Sizes    []int        `json:"sizes"`
}

// profileStageKey hashes exactly what the profiling stage depends on.
func profileStageKey(s Scenario) string {
	return hashJSON(profileKey{
		Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
		Platform: *s.Platform, Exec: s.ExecEngine,
		Runs: s.Runs, Engine: s.ProfileEngine, Level: s.ProfileLevel, Sizes: s.Sizes,
	})
}

func (r *Runner) profileStage(ctx context.Context, s Scenario) ([]profile.Curve, error) {
	v, err := r.stage(ctx, stageProfile, profileStageKey(s), func() (interface{}, error) {
		// Nested stage lookups are detached from ctx: the closure may be
		// computing on behalf of many single-flight waiters.
		w, err := r.workload(context.Background(), s)
		if err != nil {
			return nil, err
		}
		oc, err := s.optimizeConfig(r.workers)
		if err != nil {
			return nil, err
		}
		return core.Profile(w, oc)
	})
	if err != nil {
		return nil, err
	}
	return v.([]profile.Curve), nil
}

// optimizeKey extends profileKey with the solver choice.
type optimizeKey struct {
	profileKey
	Solver string `json:"solver"`
}

// optimizeStageKey hashes what the profile+solve stage depends on.
func optimizeStageKey(s Scenario) string {
	return hashJSON(optimizeKey{
		profileKey: profileKey{
			Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
			Platform: *s.Platform, Exec: s.ExecEngine,
			Runs: s.Runs, Engine: s.ProfileEngine, Level: s.ProfileLevel, Sizes: s.Sizes,
		},
		Solver: s.Solver,
	})
}

func (r *Runner) optimizeStage(ctx context.Context, s Scenario) (*core.OptimizeResult, error) {
	v, err := r.stage(ctx, stageOptimize, optimizeStageKey(s), func() (interface{}, error) {
		// The closure may be computing on behalf of many single-flight
		// waiters; once started it completes regardless of the first
		// caller's fate, so the nested profile lookup is detached from
		// ctx — otherwise one client's disconnect would fail another
		// client's in-flight optimize with its cancellation error.
		curves, err := r.profileStage(context.Background(), s)
		if err != nil {
			return nil, err
		}
		w, err := r.workload(context.Background(), s)
		if err != nil {
			return nil, err
		}
		app, err := w.Factory()
		if err != nil {
			return nil, err
		}
		oc, err := s.optimizeConfig(r.workers)
		if err != nil {
			return nil, err
		}
		return core.OptimizeFromCurves(app, curves, oc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.OptimizeResult), nil
}

// runKey captures exactly what one measured execution depends on. The
// partitioned run's allocation is identified by the key of the optimize
// stage that produced it, not its content.
type runKey struct {
	Workload  string       `json:"workload"`
	Scale     string       `json:"scale"`
	Seed      uint64       `json:"seed"`
	Platform  PlatformSpec `json:"platform"`
	Exec      string       `json:"exec"`
	Strategy  string       `json:"strategy"`
	Migration bool         `json:"migration"`
	AllocKey  string       `json:"alloc_key,omitempty"`
}

// runStageKey hashes what one measured execution depends on.
func runStageKey(s Scenario, strat core.Strategy, allocKey string) string {
	return hashJSON(runKey{
		Workload: s.Workload, Scale: s.Scale, Seed: s.Seed,
		Platform: *s.Platform, Exec: s.ExecEngine,
		Strategy: strat.String(), Migration: s.Migration, AllocKey: allocKey,
	})
}

func (r *Runner) runStage(ctx context.Context, s Scenario, strat core.Strategy, alloc core.Allocation, allocKey string) (*core.Result, error) {
	v, err := r.stage(ctx, stageRun, runStageKey(s, strat, allocKey), func() (interface{}, error) {
		w, err := r.workload(context.Background(), s)
		if err != nil {
			return nil, err
		}
		pc, err := s.platformConfig()
		if err != nil {
			return nil, err
		}
		pc.Sched.AllowMigration = s.Migration
		rc := core.RunConfig{Platform: pc, Strategy: strat, Alloc: alloc}
		return core.Run(w, rc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Result), nil
}

// allocSpec returns the spec whose optimization provides the partitioned
// run's allocation: the scenario itself, or its AllocWorkload stand-in.
func allocSpec(s Scenario) Scenario {
	if s.AllocWorkload == "" {
		return s
	}
	a := s
	a.Workload = s.AllocWorkload
	a.AllocWorkload = ""
	return a
}

// allocStageKey mirrors optimizeStage's key derivation, for runKey.
func allocStageKey(s Scenario) string {
	return optimizeStageKey(allocSpec(s))
}

// StageKeys returns the full store keys ("<kind>|<hash>") of every
// pipeline stage the scenario's partition policy executes, labeled
// "profile", "optimize", "run.shared" and "run.partitioned". These keys
// are durable identifiers: persisted results are addressed by them
// across process restarts, so any drift in Normalize or the per-stage
// key derivations silently orphans every cached result — the golden
// tests pin them for the built-in scenarios.
func (s Scenario) StageKeys() (map[string]string, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	keys := make(map[string]string)
	switch n.Partition {
	case PartitionProfile:
		keys["profile"] = stageProfile + "|" + profileStageKey(n)
	case PartitionOptimize:
		keys["profile"] = stageProfile + "|" + profileStageKey(n)
		keys["optimize"] = stageOptimize + "|" + optimizeStageKey(n)
	case PartitionShared:
		keys["run.shared"] = stageRun + "|" + runStageKey(n, core.Shared, "")
	case PartitionOptimized:
		a := allocSpec(n)
		keys["profile"] = stageProfile + "|" + profileStageKey(a)
		keys["optimize"] = stageOptimize + "|" + optimizeStageKey(a)
		keys["run.shared"] = stageRun + "|" + runStageKey(n, core.Shared, "")
		keys["run.partitioned"] = stageRun + "|" + runStageKey(n, core.Partitioned, allocStageKey(n))
	}
	if n.Trace != TraceLive {
		keys["trace"] = stageTrace + "|" + traceStageKey(n)
		if a := allocSpec(n); a.Workload != n.Workload {
			keys["trace.alloc"] = stageTrace + "|" + traceStageKey(a)
		}
	}
	return keys, nil
}

// Run normalizes and executes one scenario. The returned Result always
// carries the normalized spec and content key when normalization
// succeeded; on a pipeline failure the error is returned and also
// recorded in Result.Error, so batch consumers can use either form.
func (r *Runner) Run(s Scenario) (*Result, error) {
	return r.RunContext(context.Background(), s)
}

// RunContext is Run under a context: a canceled ctx fails pipeline
// stages not yet started (nothing is memoized for them), so a dropped
// serve-mode connection stops burning the worker pool. A stage already
// in flight runs to completion — its result is memoized and shared, so
// that work is never wasted.
//
// RunContext never panics: stage panics are contained by the memo layer
// (see StagePanicError), and a panic anywhere else in the pipeline —
// normalization, summarization — is recovered here into the same
// structured shape, so one crashing scenario is one error result, not a
// dead process.
func (r *Runner) RunContext(ctx context.Context, s Scenario) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			atomic.AddUint64(&r.stagePanics, 1)
			p := &StagePanicError{Stage: "scenario", Value: rec, Stack: string(debug.Stack())}
			if res == nil {
				res = &Result{SchemaVersion: report.SchemaVersion, Scenario: s}
			}
			p.Key = res.Key
			res.Error = p.Error()
			res.Shared, res.Partitioned, res.Optimize, res.Compose, res.Curves = nil, nil, nil, nil, nil
			err = p
		}
	}()
	n, err := s.Normalize()
	if err != nil {
		return &Result{SchemaVersion: report.SchemaVersion, Scenario: s, Error: err.Error()}, err
	}
	keyed := n
	keyed.Name = ""
	keyed.Trace = "" // replay ≡ live; the mode is non-semantic (see Key)
	res = &Result{SchemaVersion: report.SchemaVersion, Key: hashJSON(keyed), Scenario: n}
	if err := r.execute(ctx, n, res); err != nil {
		res.Error = err.Error()
		res.Shared, res.Partitioned, res.Optimize, res.Compose, res.Curves = nil, nil, nil, nil, nil
		return res, err
	}
	return res, nil
}

// execute fills the result sections the partition policy calls for.
func (r *Runner) execute(ctx context.Context, n Scenario, res *Result) error {
	switch n.Partition {
	case PartitionProfile:
		curves, err := r.profileStage(ctx, n)
		if err != nil {
			return err
		}
		res.Curves = summarizeCurves(curves)
		return nil

	case PartitionOptimize:
		opt, err := r.optimizeStage(ctx, n)
		if err != nil {
			return err
		}
		res.Optimize = summarizeOptimize(opt)
		return nil

	case PartitionShared:
		shared, err := r.runStage(ctx, n, core.Shared, nil, "")
		if err != nil {
			return err
		}
		res.Shared = summarizeRun(shared)
		return nil

	case PartitionOptimized:
		// The shared baseline and the profile+optimize leg are
		// independent simulations and run concurrently, exactly like the
		// legacy study pipeline; the partitioned run needs the optimized
		// allocation and follows.
		var (
			shared *core.Result
			opt    *core.OptimizeResult
		)
		legs := []func() error{
			func() error {
				var err error
				shared, err = r.runStage(ctx, n, core.Shared, nil, "")
				if err != nil {
					return fmt.Errorf("scenario: shared run: %w", err)
				}
				return nil
			},
			func() error {
				var err error
				opt, err = r.optimizeStage(ctx, allocSpec(n))
				if err != nil {
					return fmt.Errorf("scenario: optimize: %w", err)
				}
				return nil
			},
		}
		if err := parallel.Do(parallel.Workers(r.workers), len(legs), func(i int) error { return legs[i]() }); err != nil {
			return err
		}
		part, err := r.runStage(ctx, n, core.Partitioned, opt.Allocation, allocStageKey(n))
		if err != nil {
			return fmt.Errorf("scenario: partitioned run: %w", err)
		}
		res.Shared = summarizeRun(shared)
		res.Partitioned = summarizeRun(part)
		res.Optimize = summarizeOptimize(opt)
		res.Compose = summarizeCompose(core.CompareExpectedSimulated(opt.Expected, part))
		return nil
	}
	return fmt.Errorf("scenario: unknown partition policy %q", n.Partition)
}

// RunBatch executes a batch over the worker pool. Results come back in
// input order; a scenario's failure is recorded in its Result.Error
// without failing the batch (the returned slice always has len(specs)
// non-nil entries).
func (r *Runner) RunBatch(specs []Scenario) []*Result {
	return r.RunBatchContext(context.Background(), specs)
}

// RunBatchContext is RunBatch under a context. Scenarios not yet started
// when ctx is canceled are skipped and their slots stay nil — a dropped
// client cancels queued work instead of burning the worker pool.
// Scenarios already in flight finish normally (and keep their results).
func (r *Runner) RunBatchContext(ctx context.Context, specs []Scenario) []*Result {
	results, _, done := r.RunBatchStream(ctx, specs, nil)
	<-done
	return results
}

// RunBatchStream executes a batch over the worker pool, invoking
// observe for each finished scenario in submission order as soon as it
// and all its predecessors are done — the shape both the serve
// endpoints and the sweep executor stream from. observe returning false
// abandons the in-order walk (useful when the consumer is gone);
// execution already in flight continues in the background, governed by
// ctx exactly as in RunBatchContext, with canceled-before-start slots
// left nil. The walk also ends at the first nil slot (nothing later can
// be streamed in order past a hole).
//
// RunBatchStream returns as soon as the walk ends; the results and
// errors slices are safe to read in full only after the returned
// channel is closed (every worker finished). Slots already visited by
// observe are safe immediately.
func (r *Runner) RunBatchStream(ctx context.Context, specs []Scenario, observe func(int, *Result) bool) ([]*Result, []error, <-chan struct{}) {
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	ready := make([]chan struct{}, len(specs))
	onces := make([]sync.Once, len(specs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	closeReady := func(i int) { onces[i].Do(func() { close(ready[i]) }) }
	done := make(chan struct{})
	go func() {
		defer close(done)
		derr := parallel.Do(parallel.Workers(r.workers), len(specs), func(i int) error {
			defer closeReady(i)
			if ctx.Err() != nil {
				return nil
			}
			results[i], errs[i] = r.RunContext(ctx, specs[i])
			return nil
		})
		// A worker slot that died before RunContext ran (an injected
		// dispatch fault, or a panic the pool recovered outside the
		// scenario's own containment) leaves its slot nil with a live
		// context. Synthesize an error result before closing the
		// channel, so the in-order walk neither hangs on the unclosed
		// channel nor mistakes the hole for a cancellation.
		for i := range specs {
			if results[i] == nil && errs[i] == nil && ctx.Err() == nil {
				err := derr
				if err == nil {
					err = fmt.Errorf("scenario: batch worker for scenario %d did not run", i)
				}
				errs[i] = err
				results[i] = &Result{SchemaVersion: report.SchemaVersion, Scenario: specs[i], Error: err.Error()}
			}
			closeReady(i)
		}
	}()
	for i := range specs {
		<-ready[i]
		if results[i] == nil {
			break
		}
		if observe != nil && !observe(i, results[i]) {
			break
		}
	}
	return results, errs, done
}
