package profile

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

func cfg() Config {
	return Config{Sizes: []int{1, 2, 4}, UnitSets: 8, Ways: 4, LineSize: 64}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg()
	bad.Sizes = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty sizes accepted")
	}
	bad = cfg()
	bad.Sizes = []int{3}
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	bad = cfg()
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestCurveAt(t *testing.T) {
	c := Curve{Sizes: []int{1, 2, 4}, Misses: []float64{100, 50, 10}}
	cases := map[int]float64{1: 100, 2: 50, 3: 50, 4: 10, 8: 10, 0: 100}
	for units, want := range cases {
		if got := c.At(units); got != want {
			t.Errorf("At(%d) = %v, want %v", units, got, want)
		}
	}
	long := Curve{Sizes: []int{1, 2, 4, 8, 16, 32, 64, 128}}
	for k := range long.Sizes {
		long.Misses = append(long.Misses, float64(int(1000)>>k))
	}
	// The binary search must agree with a linear scan at every point.
	for units := 0; units <= 256; units++ {
		best := 0
		for k, s := range long.Sizes {
			if s <= units {
				best = k
			}
		}
		if got := long.At(units); got != long.Misses[best] {
			t.Errorf("At(%d) = %v, want %v", units, got, long.Misses[best])
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineStackDist.String() != "stackdist" || EngineBank.String() != "bank" {
		t.Error("engine names wrong")
	}
}

// TestEnginesEquivalent feeds identical streams with assorted locality
// profiles to both engines and requires bit-identical curves: the
// stack-distance walk is exact, not an approximation.
func TestEnginesEquivalent(t *testing.T) {
	pcfg := Config{Sizes: []int{1, 2, 4, 8}, UnitSets: 8, Ways: 4, LineSize: 64}
	regionOf := map[mem.RegionID]int{0: 0, 1: 0, 2: 1}
	names := []string{"taskA", "taskB"}

	sd, err := New(pcfg, names, regionOf)
	if err != nil {
		t.Fatal(err)
	}
	bankCfg := pcfg
	bankCfg.Engine = EngineBank
	bank, err := New(bankCfg, names, regionOf)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Engine() != EngineStackDist || bank.Engine() != EngineBank {
		t.Fatal("engine selection broken")
	}

	feed := func(line uint64, write bool, region mem.RegionID) {
		sd.Observe(line, write, region)
		bank.Observe(line, write, region)
	}
	// Deterministic xorshift64* stream mixing loops, streams and bursts
	// across both entities, including writes (which must not matter).
	x := uint64(0x1234_5678_9ABC_DEF1)
	for i := 0; i < 80000; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 0x2545F4914F6CDD1D
		region := mem.RegionID(v % 3)
		write := v&8 == 0
		var line uint64
		switch v % 5 {
		case 0:
			line = v % 48 // tight loop
		case 1:
			line = v % 1024 // medium working set
		case 2:
			line = (1 << 22) + v%(1<<16) // far stream
		case 3:
			line = uint64(i/11) % 4096 // slow sequential sweep
		default:
			line = (v % 64) * 64 // set-conflict pattern
		}
		feed(line, write, region)
	}
	a, b := sd.Curves(), bank.Curves()
	if len(a) != len(b) {
		t.Fatalf("curve counts differ: %d vs %d", len(a), len(b))
	}
	for e := range a {
		if a[e].Accesses != b[e].Accesses {
			t.Errorf("%s: accesses %v vs %v", a[e].Entity, a[e].Accesses, b[e].Accesses)
		}
		for k := range a[e].Misses {
			if a[e].Misses[k] != b[e].Misses[k] {
				t.Errorf("%s at %d units: stackdist %v, bank %v",
					a[e].Entity, a[e].Sizes[k], a[e].Misses[k], b[e].Misses[k])
			}
		}
	}
}

func TestProfilerSeparatesEntities(t *testing.T) {
	regionOf := map[mem.RegionID]int{0: 0, 1: 0, 2: 1}
	p, err := New(cfg(), []string{"taskA", "taskB"}, regionOf)
	if err != nil {
		t.Fatal(err)
	}
	// Feed taskA a loop over a tiny working set; taskB a long stream.
	for iter := 0; iter < 20; iter++ {
		for i := uint64(0); i < 8; i++ {
			p.Observe(i, false, 0)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		p.Observe(1000+i, false, 2)
	}
	p.Observe(0, false, 99) // unknown region: ignored

	curves := p.Curves()
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	a, b := curves[0], curves[1]
	if a.Accesses != 160 || b.Accesses != 2000 {
		t.Errorf("accesses = %v/%v", a.Accesses, b.Accesses)
	}
	// Task A's working set (8 lines) fits even the smallest candidate
	// (1 unit = 8 sets * 4 ways = 32 lines): only cold misses.
	for k := range a.Sizes {
		if a.Misses[k] != 8 {
			t.Errorf("taskA misses at %d units = %v, want 8 cold", a.Sizes[k], a.Misses[k])
		}
	}
	// Task B streams: every access misses at every size.
	for k := range b.Sizes {
		if b.Misses[k] != 2000 {
			t.Errorf("taskB misses at %d units = %v, want 2000", b.Sizes[k], b.Misses[k])
		}
	}
}

func TestProfilerCurveMonotoneForLoops(t *testing.T) {
	regionOf := map[mem.RegionID]int{0: 0}
	p, _ := New(Config{Sizes: []int{1, 2, 4, 8}, UnitSets: 8, Ways: 4, LineSize: 64},
		[]string{"loop"}, regionOf)
	// Loop over 100 lines: fits 4 units (128 lines) but not 1 unit (32).
	for iter := 0; iter < 30; iter++ {
		for i := uint64(0); i < 100; i++ {
			p.Observe(i, false, 0)
		}
	}
	c := p.Curves()[0]
	for k := 1; k < len(c.Misses); k++ {
		if c.Misses[k] > c.Misses[k-1] {
			t.Errorf("curve not non-increasing at %d: %v", k, c.Misses)
		}
	}
	if c.Misses[len(c.Misses)-1] != 100 {
		t.Errorf("largest size should leave only cold misses, got %v", c.Misses)
	}
	if c.Misses[0] <= 100 {
		t.Errorf("smallest size should thrash, got %v", c.Misses[0])
	}
}

func TestObserverIntegrationWithCache(t *testing.T) {
	// Wire a profiler to a real L2 like the experiment harness does.
	l2 := cache.New(cache.Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 64})
	regionOf := map[mem.RegionID]int{5: 0}
	p, _ := New(cfg(), []string{"only"}, regionOf)
	l2.Observer = p.Observe
	for i := 0; i < 50; i++ {
		l2.Access(trace.Access{Addr: uint64(i * 64), Size: 4, Region: 5})
	}
	if got := p.Curves()[0].Accesses; got != 50 {
		t.Errorf("observed %v accesses, want 50", got)
	}
}

func TestNewValidatesRegions(t *testing.T) {
	if _, err := New(Config{Sizes: []int{2}}, nil, nil); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestAverage(t *testing.T) {
	run1 := []Curve{{Entity: "a", Sizes: []int{1, 2}, Misses: []float64{10, 4}, Accesses: 100}}
	run2 := []Curve{{Entity: "a", Sizes: []int{1, 2}, Misses: []float64{20, 8}, Accesses: 200}}
	avg, err := Average([][]Curve{run1, run2})
	if err != nil {
		t.Fatal(err)
	}
	if avg[0].Misses[0] != 15 || avg[0].Misses[1] != 6 || avg[0].Accesses != 150 {
		t.Errorf("avg = %+v", avg[0])
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Error("empty average accepted")
	}
	run1 := []Curve{{Entity: "a", Sizes: []int{1}, Misses: []float64{1}}}
	run2 := []Curve{{Entity: "b", Sizes: []int{1}, Misses: []float64{1}}}
	if _, err := Average([][]Curve{run1, run2}); err == nil {
		t.Error("mismatched entities accepted")
	}
	run3 := []Curve{}
	if _, err := Average([][]Curve{run1, run3}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestCurveByEntity(t *testing.T) {
	cs := []Curve{{Entity: "x"}, {Entity: "y"}}
	if CurveByEntity(cs, "y") != &cs[1] {
		t.Error("lookup failed")
	}
	if CurveByEntity(cs, "z") != nil {
		t.Error("missing entity should be nil")
	}
}
