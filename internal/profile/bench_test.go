package profile

import (
	"testing"

	"repro/internal/mem"
)

// benchStream builds a deterministic synthetic L2-bound stream with the
// locality mix of the real workloads: tight loops, medium working sets,
// and streaming sweeps, spread over two entities.
func benchStream(n int) []uint64 {
	stream := make([]uint64, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range stream {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 0x2545F4914F6CDD1D
		switch v % 4 {
		case 0:
			stream[i] = v % 64
		case 1:
			stream[i] = v % 2048
		case 2:
			stream[i] = (1 << 20) + uint64(i)%(1<<15)
		default:
			stream[i] = uint64(i/9) % 8192
		}
	}
	return stream
}

// BenchmarkProfilerObserve measures the per-access cost of the profiling
// hot path at the paper geometry (8 candidate sizes, 8-set units, 4-way)
// for both engines, tracking the stack-distance speedup over the
// bank-of-caches oracle.
func BenchmarkProfilerObserve(b *testing.B) {
	cfg := Config{
		Sizes:    []int{1, 2, 4, 8, 16, 32, 64, 128},
		UnitSets: 8,
		Ways:     4,
		LineSize: 64,
	}
	regionOf := map[mem.RegionID]int{0: 0, 1: 1}
	stream := benchStream(1 << 16)
	for _, engine := range []Engine{EngineStackDist, EngineBank} {
		b.Run(engine.String(), func(b *testing.B) {
			ecfg := cfg
			ecfg.Engine = engine
			p, err := New(ecfg, []string{"a", "b"}, regionOf)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				line := stream[i&(len(stream)-1)]
				p.Observe(line, line&1 == 0, mem.RegionID(line&1))
			}
		})
	}
}
