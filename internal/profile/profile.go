// Package profile measures per-entity miss curves m_i(z_p): the number of
// L2 misses entity i would suffer with z_p allocation units of exclusive
// cache. The curves are the input of the paper's optimization method
// (section 3.2: "The number of misses of task i with z_p cache sets can
// be obtained by simulation ... we use an average over the m obtained out
// of different simulations").
//
// Instead of storing address traces, the profiler taps the L2-bound
// access stream (through cache.Cache.Observer) during one functional run
// and measures every candidate size online. Because partitioning isolates
// entities completely, an entity's miss count inside a partition of z
// sets equals its miss count in a standalone cache of z sets fed the same
// stream — the property verified by TestPartitionEqualsIsolatedCacheProperty
// in internal/cache and exploited here.
//
// Two engines implement the measurement:
//
//   - EngineStackDist (default) runs internal/stackdist's single-pass
//     Mattson simulator: one recency-stack walk per access yields the
//     exact hit/miss verdict at every candidate size at once. This is
//     not an approximation — LRU with bit-selection indexing satisfies
//     the inclusion property across the power-of-two candidate sizes,
//     so the walk reproduces every candidate cache's state exactly.
//   - EngineBank replays the stream into a bank of real cache.Cache
//     instances, one per candidate size. It is kept as the reference
//     oracle: TestEnginesEquivalent* assert bit-identical curves.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/stackdist"
)

// Engine selects the miss-curve measurement implementation.
type Engine uint8

// Available engines: the single-pass stack-distance simulator (default)
// and the bank-of-caches reference oracle.
const (
	EngineStackDist Engine = iota
	EngineBank
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == EngineBank {
		return "bank"
	}
	return "stackdist"
}

// ParseEngine resolves the CLI/spec spelling of a profiling engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "stackdist", "":
		return EngineStackDist, nil
	case "bank":
		return EngineBank, nil
	}
	return 0, fmt.Errorf("profile: unknown profiling engine %q (want stackdist or bank)", s)
}

// Config describes the candidate sizes and geometry.
type Config struct {
	Sizes    []int // candidate sizes in allocation units, ascending
	UnitSets int   // sets per unit (rtos.AllocUnit)
	Ways     int   // L2 associativity
	LineSize int
	Engine   Engine // measurement engine; zero value = EngineStackDist
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("profile: no candidate sizes")
	}
	for _, s := range c.Sizes {
		if s <= 0 || s&(s-1) != 0 {
			return fmt.Errorf("profile: candidate size %d not a positive power of two", s)
		}
	}
	if c.UnitSets <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("profile: bad geometry %d/%d/%d", c.UnitSets, c.Ways, c.LineSize)
	}
	return nil
}

// Curve is the measured miss curve of one entity.
type Curve struct {
	Entity   string
	Sizes    []int     // units
	Misses   []float64 // misses at Sizes[k], averaged over runs
	Accesses float64   // L2-bound accesses, averaged over runs
}

// At returns the miss count at the given size. The size must be one of
// the candidate sizes; otherwise the nearest not-larger candidate is used
// (curves are step functions of the admissible sizes). Sizes is sorted
// ascending, so a binary search suffices; At sits inside the MCKP
// item-building loop and is called for every entity × candidate size.
func (c *Curve) At(units int) float64 {
	// First index with Sizes[i] > units; the candidate before it is the
	// largest not-larger one.
	i := sort.SearchInts(c.Sizes, units+1)
	if i == 0 {
		return c.Misses[0]
	}
	return c.Misses[i-1]
}

// Profiler feeds one run's L2-bound stream into the selected engine.
// Attach Observe to the L2 via cache.Cache.Observer.
type Profiler struct {
	cfg   Config
	names []string
	// entityOf maps region id -> entity index, -1 for untracked regions.
	// Region ids are dense and small (mem.AddressSpace allocates them
	// sequentially), so a slice beats a map lookup on the hot path.
	entityOf []int32
	banks    [][]*cache.Cache // [entity][size], EngineBank only
	sims     []*stackdist.Sim // [entity], EngineStackDist only
	accesses []uint64
}

// New creates a profiler for the given entities. regionOf maps every
// region id to the index of its owning entity in names.
func New(cfg Config, names []string, regionOf map[mem.RegionID]int) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := append([]int(nil), cfg.Sizes...)
	sort.Ints(sizes)
	cfg.Sizes = sizes
	maxID := mem.RegionID(-1)
	for r := range regionOf {
		if r > maxID {
			maxID = r
		}
	}
	entityOf := make([]int32, maxID+1)
	for i := range entityOf {
		entityOf[i] = -1
	}
	for r, e := range regionOf {
		if r >= 0 {
			entityOf[r] = int32(e)
		}
	}
	p := &Profiler{
		cfg:      cfg,
		names:    names,
		entityOf: entityOf,
		accesses: make([]uint64, len(names)),
	}
	switch cfg.Engine {
	case EngineStackDist:
		sdCfg := stackdist.Config{Sizes: sizes, UnitSets: cfg.UnitSets, Ways: cfg.Ways}
		p.sims = make([]*stackdist.Sim, len(names))
		for e := range names {
			sim, err := stackdist.New(sdCfg)
			if err != nil {
				return nil, fmt.Errorf("profile: %w", err)
			}
			p.sims[e] = sim
		}
	case EngineBank:
		p.banks = make([][]*cache.Cache, len(names))
		for e := range names {
			for _, s := range sizes {
				p.banks[e] = append(p.banks[e], cache.New(cache.Config{
					Name:     fmt.Sprintf("prof.%s.%d", names[e], s),
					Sets:     s * cfg.UnitSets,
					Ways:     cfg.Ways,
					LineSize: cfg.LineSize,
				}))
			}
		}
	default:
		return nil, fmt.Errorf("profile: unknown engine %d", cfg.Engine)
	}
	return p, nil
}

// Engine returns the measurement engine in use.
func (p *Profiler) Engine() Engine { return p.cfg.Engine }

// Observe implements the cache observer hook.
func (p *Profiler) Observe(lineAddr uint64, write bool, region mem.RegionID) {
	if region < 0 || int(region) >= len(p.entityOf) {
		return
	}
	e := p.entityOf[region]
	if e < 0 {
		return
	}
	if p.sims != nil {
		// The sim keeps its own access counter; skip the redundant one.
		p.sims[e].Access(lineAddr)
		return
	}
	p.accesses[e]++
	for _, c := range p.banks[e] {
		c.AccessLine(lineAddr, write, region)
	}
}

// Curves extracts the miss curves of this single run.
func (p *Profiler) Curves() []Curve {
	out := make([]Curve, len(p.names))
	for e, name := range p.names {
		c := Curve{Entity: name, Sizes: append([]int(nil), p.cfg.Sizes...), Accesses: float64(p.accesses[e])}
		if p.sims != nil {
			c.Accesses = float64(p.sims[e].Accesses())
			for _, m := range p.sims[e].Misses() {
				c.Misses = append(c.Misses, float64(m))
			}
		} else {
			for _, bank := range p.banks[e] {
				c.Misses = append(c.Misses, float64(bank.Stats().Misses))
			}
		}
		out[e] = c
	}
	return out
}

// Average combines curves from repeated runs into the paper's m̄ values.
// All runs must cover the same entities and sizes, in the same order.
func Average(runs [][]Curve) ([]Curve, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("profile: no runs to average")
	}
	base := runs[0]
	out := make([]Curve, len(base))
	for e := range base {
		out[e] = Curve{
			Entity: base[e].Entity,
			Sizes:  append([]int(nil), base[e].Sizes...),
			Misses: make([]float64, len(base[e].Misses)),
		}
	}
	for _, run := range runs {
		if len(run) != len(base) {
			return nil, fmt.Errorf("profile: run has %d entities, want %d", len(run), len(base))
		}
		for e := range run {
			if run[e].Entity != base[e].Entity || len(run[e].Misses) != len(base[e].Misses) {
				return nil, fmt.Errorf("profile: mismatched curve for %q", run[e].Entity)
			}
			out[e].Accesses += run[e].Accesses
			for k := range run[e].Misses {
				out[e].Misses[k] += run[e].Misses[k]
			}
		}
	}
	n := float64(len(runs))
	for e := range out {
		out[e].Accesses /= n
		for k := range out[e].Misses {
			out[e].Misses[k] /= n
		}
	}
	return out, nil
}

// CurveByEntity finds a curve by name, or nil.
func CurveByEntity(curves []Curve, name string) *Curve {
	for i := range curves {
		if curves[i].Entity == name {
			return &curves[i]
		}
	}
	return nil
}
