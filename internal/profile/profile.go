// Package profile measures per-entity miss curves m_i(z_p): the number of
// L2 misses entity i would suffer with z_p allocation units of exclusive
// cache. The curves are the input of the paper's optimization method
// (section 3.2: "The number of misses of task i with z_p cache sets can
// be obtained by simulation ... we use an average over the m obtained out
// of different simulations").
//
// Instead of storing address traces, the profiler taps the L2-bound
// access stream (through cache.Cache.Observer) during one functional run
// and feeds every entity's references into a bank of candidate-size
// caches online. Because partitioning isolates entities completely, an
// entity's miss count inside a partition of z sets equals its miss count
// in a standalone cache of z sets fed the same stream — the property
// verified by TestPartitionEqualsIsolatedCacheProperty in internal/cache
// and exploited here.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Config describes the candidate-cache bank.
type Config struct {
	Sizes    []int // candidate sizes in allocation units, ascending
	UnitSets int   // sets per unit (rtos.AllocUnit)
	Ways     int   // L2 associativity
	LineSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("profile: no candidate sizes")
	}
	for _, s := range c.Sizes {
		if s <= 0 || s&(s-1) != 0 {
			return fmt.Errorf("profile: candidate size %d not a positive power of two", s)
		}
	}
	if c.UnitSets <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("profile: bad geometry %d/%d/%d", c.UnitSets, c.Ways, c.LineSize)
	}
	return nil
}

// Curve is the measured miss curve of one entity.
type Curve struct {
	Entity   string
	Sizes    []int     // units
	Misses   []float64 // misses at Sizes[k], averaged over runs
	Accesses float64   // L2-bound accesses, averaged over runs
}

// At returns the miss count at the given size. The size must be one of
// the candidate sizes; otherwise the nearest not-larger candidate is used
// (curves are step functions of the admissible sizes).
func (c *Curve) At(units int) float64 {
	best := -1
	for k, s := range c.Sizes {
		if s <= units {
			best = k
		}
	}
	if best < 0 {
		best = 0
	}
	return c.Misses[best]
}

// Profiler feeds one run's L2-bound stream into per-entity candidate
// caches. Attach Observe to the L2 via cache.Cache.Observer.
type Profiler struct {
	cfg      Config
	names    []string
	entityOf map[mem.RegionID]int
	banks    [][]*cache.Cache // [entity][size]
	accesses []uint64
}

// New creates a profiler for the given entities. regionOf maps every
// region id to the index of its owning entity in names.
func New(cfg Config, names []string, regionOf map[mem.RegionID]int) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := append([]int(nil), cfg.Sizes...)
	sort.Ints(sizes)
	cfg.Sizes = sizes
	p := &Profiler{
		cfg:      cfg,
		names:    names,
		entityOf: regionOf,
		banks:    make([][]*cache.Cache, len(names)),
		accesses: make([]uint64, len(names)),
	}
	for e := range names {
		for _, s := range sizes {
			p.banks[e] = append(p.banks[e], cache.New(cache.Config{
				Name:     fmt.Sprintf("prof.%s.%d", names[e], s),
				Sets:     s * cfg.UnitSets,
				Ways:     cfg.Ways,
				LineSize: cfg.LineSize,
			}))
		}
	}
	return p, nil
}

// Observe implements the cache observer hook.
func (p *Profiler) Observe(lineAddr uint64, write bool, region mem.RegionID) {
	e, ok := p.entityOf[region]
	if !ok {
		return
	}
	p.accesses[e]++
	for _, c := range p.banks[e] {
		c.AccessLine(lineAddr, write, region)
	}
}

// Curves extracts the miss curves of this single run.
func (p *Profiler) Curves() []Curve {
	out := make([]Curve, len(p.names))
	for e, name := range p.names {
		c := Curve{Entity: name, Sizes: append([]int(nil), p.cfg.Sizes...), Accesses: float64(p.accesses[e])}
		for _, bank := range p.banks[e] {
			c.Misses = append(c.Misses, float64(bank.Stats().Misses))
		}
		out[e] = c
	}
	return out
}

// Average combines curves from repeated runs into the paper's m̄ values.
// All runs must cover the same entities and sizes, in the same order.
func Average(runs [][]Curve) ([]Curve, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("profile: no runs to average")
	}
	base := runs[0]
	out := make([]Curve, len(base))
	for e := range base {
		out[e] = Curve{
			Entity: base[e].Entity,
			Sizes:  append([]int(nil), base[e].Sizes...),
			Misses: make([]float64, len(base[e].Misses)),
		}
	}
	for _, run := range runs {
		if len(run) != len(base) {
			return nil, fmt.Errorf("profile: run has %d entities, want %d", len(run), len(base))
		}
		for e := range run {
			if run[e].Entity != base[e].Entity || len(run[e].Misses) != len(base[e].Misses) {
				return nil, fmt.Errorf("profile: mismatched curve for %q", run[e].Entity)
			}
			out[e].Accesses += run[e].Accesses
			for k := range run[e].Misses {
				out[e].Misses[k] += run[e].Misses[k]
			}
		}
	}
	n := float64(len(runs))
	for e := range out {
		out[e].Accesses /= n
		for k := range out[e].Misses {
			out[e].Misses[k] /= n
		}
	}
	return out, nil
}

// CurveByEntity finds a curve by name, or nil.
func CurveByEntity(curves []Curve, name string) *Curve {
	for i := range curves {
		if curves[i].Entity == name {
			return &curves[i]
		}
	}
	return nil
}
