// Package repro's root-level benchmark harness regenerates every table
// and figure of the paper's evaluation at paper scale:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper-comparable quantities as custom
// metrics (miss ratios, miss rates, CPI, compositionality) and logs the
// rendered artifact, so bench_output.txt doubles as the reproduction
// record referenced by EXPERIMENTS.md. Paper-scale studies are computed
// once and shared across benchmarks; each benchmark's loop then measures
// one meaningful stage (a full simulation run, a solver invocation, an
// assignment search).
package repro

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/rtos"
	"repro/internal/workloads"
)

var (
	benchCfg = experiments.Config{
		Scale:       workloads.Paper,
		Platform:    experiments.Default().Platform,
		ProfileRuns: 1,
	}

	app1Once  sync.Once
	app1Study *experiments.Study
	app1Err   error

	app2Once  sync.Once
	app2Study *experiments.Study
	app2Err   error
)

func app1(b *testing.B) *experiments.Study {
	b.Helper()
	app1Once.Do(func() { app1Study, app1Err = experiments.App1(benchCfg) })
	if app1Err != nil {
		b.Fatal(app1Err)
	}
	return app1Study
}

func app2(b *testing.B) *experiments.Study {
	b.Helper()
	app2Once.Do(func() { app2Study, app2Err = experiments.App2(benchCfg) })
	if app2Err != nil {
		b.Fatal(app2Err)
	}
	return app2Study
}

// BenchmarkTable1 regenerates the Table 1 allocation (the section 3.2
// solver stage) for 2×JPEG + Canny.
func BenchmarkTable1(b *testing.B) {
	s := app1(b)
	w := workloads.JPEGCanny(workloads.Paper, nil)
	b.ResetTimer()
	var opt *core.OptimizeResult
	for i := 0; i < b.N; i++ {
		app, err := w.Factory()
		if err != nil {
			b.Fatal(err)
		}
		opt, err = core.OptimizeFromCurves(app, s.Opt.Curves, core.OptimizeConfig{
			Platform: benchCfg.Platform,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt.Allocation.TotalUnits()), "alloc-units")
	b.Logf("\n%s", experiments.AllocationTable(s, "Table 1: allocated L2 units, 2 jpegs & canny"))
}

// BenchmarkTable2 regenerates the Table 2 allocation for MPEG-2.
func BenchmarkTable2(b *testing.B) {
	s := app2(b)
	w := workloads.MPEG2(workloads.Paper, nil)
	b.ResetTimer()
	var opt *core.OptimizeResult
	for i := 0; i < b.N; i++ {
		app, err := w.Factory()
		if err != nil {
			b.Fatal(err)
		}
		opt, err = core.OptimizeFromCurves(app, s.Opt.Curves, core.OptimizeConfig{
			Platform: benchCfg.Platform,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt.Allocation.TotalUnits()), "alloc-units")
	b.Logf("\n%s", experiments.AllocationTable(s, "Table 2: allocated L2 units, mpeg2"))
}

// BenchmarkFigure2JpegCanny measures a full partitioned simulation of
// application 1 and reports the Figure 2 headline: misses vs shared.
func BenchmarkFigure2JpegCanny(b *testing.B) {
	s := app1(b)
	w := workloads.JPEGCanny(workloads.Paper, nil)
	b.ResetTimer()
	var part *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		part, err = core.Run(w, core.RunConfig{
			Platform: benchCfg.Platform, Strategy: core.Partitioned, Alloc: s.Opt.Allocation,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Shared.TotalMisses())/float64(part.TotalMisses()), "miss-ratio(paper=5)")
	b.Logf("\n%s", experiments.Figure2(s))
}

// BenchmarkFigure2Mpeg2 is the MPEG-2 panel of Figure 2.
func BenchmarkFigure2Mpeg2(b *testing.B) {
	s := app2(b)
	w := workloads.MPEG2(workloads.Paper, nil)
	b.ResetTimer()
	var part *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		part, err = core.Run(w, core.RunConfig{
			Platform: benchCfg.Platform, Strategy: core.Partitioned, Alloc: s.Opt.Allocation,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Shared.TotalMisses())/float64(part.TotalMisses()), "miss-ratio(paper=6.5)")
	b.Logf("\n%s", experiments.Figure2(s))
}

// l2Record is one captured L2-bound line reference.
type l2Record struct {
	line   uint64
	region mem.RegionID
	write  bool
}

// l2Capture is one functional run's L2-bound stream plus the entity
// mapping the profiler needs to replay it.
type l2Capture struct {
	stream   []l2Record
	names    []string
	regionOf map[mem.RegionID]int
}

var (
	capOnce  [2]sync.Once
	captures [2]*l2Capture
	capErr   [2]error
)

// captureL2Stream runs the workload once under the shared strategy with a
// recording observer and caches the result, so the Figure 3 benchmarks
// can measure the profiling stage (miss-curve extraction) in isolation
// from the functional simulation that produces the stream.
func captureL2Stream(b *testing.B, which int, w core.Workload) *l2Capture {
	b.Helper()
	capOnce[which].Do(func() {
		app, err := w.Factory()
		if err != nil {
			capErr[which] = err
			return
		}
		c := &l2Capture{regionOf: make(map[mem.RegionID]int)}
		for i, e := range app.Entities() {
			c.names = append(c.names, e.Name)
			for _, r := range e.Regions {
				c.regionOf[r] = i
			}
		}
		_, err = core.RunApp(app, core.RunConfig{
			Platform: benchCfg.Platform,
			L2Observer: func(line uint64, write bool, region mem.RegionID) {
				c.stream = append(c.stream, l2Record{line: line, region: region, write: write})
			},
		})
		if err != nil {
			capErr[which] = err
			return
		}
		captures[which] = c
	})
	if capErr[which] != nil {
		b.Fatal(capErr[which])
	}
	return captures[which]
}

// benchProfilingStage replays a captured L2-bound stream through both
// profiling engines. This is the stage the paper calls "obtained by
// simulation": turning one run's stream into per-entity miss curves at
// every candidate size. The stackdist/bank ratio is the single-pass
// speedup over the bank-of-caches oracle.
func benchProfilingStage(b *testing.B, cap *l2Capture, maxRelDiff float64) {
	for _, engine := range []profile.Engine{profile.EngineStackDist, profile.EngineBank} {
		b.Run(engine.String(), func(b *testing.B) {
			pcfg := profile.Config{
				Sizes:    []int{1, 2, 4, 8, 16, 32, 64, 128},
				UnitSets: rtos.AllocUnit,
				Ways:     benchCfg.Platform.PartitionGeom().Ways,
				LineSize: benchCfg.Platform.PartitionGeom().LineSize,
				Engine:   engine,
			}
			b.ResetTimer()
			var curves []profile.Curve
			for i := 0; i < b.N; i++ {
				p, err := profile.New(pcfg, cap.names, cap.regionOf)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range cap.stream {
					p.Observe(r.line, r.write, r.region)
				}
				curves = p.Curves()
			}
			b.ReportMetric(float64(len(cap.stream))/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e3, "Maccesses/s")
			// A parent benchmark that calls b.Run never reports its
			// own metrics, so the study's compositionality figure is
			// attached to each engine's result line instead.
			b.ReportMetric(maxRelDiff*100, "maxreldiff-%(paper<=2)")
			if len(curves) == 0 {
				b.Fatal("no curves")
			}
		})
	}
}

// BenchmarkFigure3JpegCanny measures the profiling stage (expected-miss
// prediction) behind Figure 3 — replaying application 1's captured
// L2-bound stream into each engine — and reports the compositionality
// metric of the full study.
func BenchmarkFigure3JpegCanny(b *testing.B) {
	s := app1(b)
	cap := captureL2Stream(b, 0, workloads.JPEGCanny(workloads.Paper, nil))
	benchProfilingStage(b, cap, s.Compose.MaxRelDiff)
	chart, _ := experiments.Figure3(s)
	b.Logf("\n%s", chart)
}

// BenchmarkFigure3Mpeg2 is the MPEG-2 panel of Figure 3.
func BenchmarkFigure3Mpeg2(b *testing.B) {
	s := app2(b)
	cap := captureL2Stream(b, 1, workloads.MPEG2(workloads.Paper, nil))
	benchProfilingStage(b, cap, s.Compose.MaxRelDiff)
	chart, _ := experiments.Figure3(s)
	b.Logf("\n%s", chart)
}

// BenchmarkProfilePipelineJpegCanny measures the full profiling pipeline
// (functional simulation + default engine) — the end-to-end cost of one
// jittered repetition of core.Profile.
func BenchmarkProfilePipelineJpegCanny(b *testing.B) {
	w := workloads.JPEGCanny(workloads.Paper, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Profile(w, core.OptimizeConfig{Platform: benchCfg.Platform, Runs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyJpegCanny measures the end-to-end study (shared run,
// profile, optimize, partitioned run) sequentially and with the
// parallel harness, tracking the fan-out win.
func BenchmarkStudyJpegCanny(b *testing.B) {
	w := workloads.JPEGCanny(workloads.Paper, nil)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchCfg
			cfg.Workers = bc.workers
			cfg.ProfileRuns = 2
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunStudy(w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadlineJpegCanny measures the shared-cache baseline run of
// application 1 and reports the in-text headline metrics.
func BenchmarkHeadlineJpegCanny(b *testing.B) {
	s := app1(b)
	w := workloads.JPEGCanny(workloads.Paper, nil)
	b.ResetTimer()
	var shared *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		shared, err = core.Run(w, core.RunConfig{Platform: benchCfg.Platform})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shared.L2MissRate*100, "shared-missrate-%(paper=9.46)")
	b.ReportMetric(s.Part.L2MissRate*100, "part-missrate-%(paper=2.21)")
	b.ReportMetric(shared.CPIMean, "shared-CPI(paper=1.4)")
	b.ReportMetric(s.Part.CPIMean, "part-CPI(paper=1.1)")
}

// BenchmarkHeadlineMpeg2 reports the MPEG-2 headline metrics.
func BenchmarkHeadlineMpeg2(b *testing.B) {
	s := app2(b)
	w := workloads.MPEG2(workloads.Paper, nil)
	b.ResetTimer()
	var shared *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		shared, err = core.Run(w, core.RunConfig{Platform: benchCfg.Platform})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shared.L2MissRate*100, "shared-missrate-%(paper=5.1)")
	b.ReportMetric(s.Part.L2MissRate*100, "part-missrate-%(paper=0.8)")
	b.ReportMetric(shared.CPIMean, "shared-CPI(paper~1.75)")
	b.ReportMetric(s.Part.CPIMean, "part-CPI(paper~1.65)")
}

// BenchmarkHeadlineMpeg2OneMB reproduces the paper's 1 MB shared-L2
// MPEG-2 data point.
func BenchmarkHeadlineMpeg2OneMB(b *testing.B) {
	w := workloads.MPEG2(workloads.Paper, nil)
	pc := benchCfg.Platform
	pc.Topology = pc.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets *= 2 })
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Run(w, core.RunConfig{Platform: pc})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.L2MissRate*100, "missrate-%(paper=0.6)")
	b.ReportMetric(res.CPIMean, "CPI(paper=1.7)")
}

// BenchmarkCompositionality is extension X1: jpeg1's misses alone vs
// co-scheduled, under the partitioned cache (the loop measures the solo
// partitioned run).
func BenchmarkCompositionality(b *testing.B) {
	s := app1(b)
	solo := workloads.JPEG1Only(workloads.Paper)
	b.ResetTimer()
	var soloPart *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		soloPart, err = core.Run(solo, core.RunConfig{
			Platform: benchCfg.Platform, Strategy: core.Partitioned, Alloc: s.Opt.Allocation,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	sum := func(r *core.Result) float64 {
		var t uint64
		for _, n := range []string{"FrontEnd1", "IDCT1", "Raster1", "BackEnd1"} {
			if e := r.Entity(n); e != nil {
				t += e.Misses
			}
		}
		return float64(t)
	}
	soloM, corunM := sum(soloPart), sum(s.Part)
	shift := (corunM - soloM) / soloM
	if shift < 0 {
		shift = -shift
	}
	b.ReportMetric(shift*100, "partitioned-shift-%")
}

// BenchmarkGranularityAblation is extension X2: resolving the same
// program at column-caching (whole-way) granularity.
func BenchmarkGranularityAblation(b *testing.B) {
	s := app1(b)
	w := workloads.JPEGCanny(workloads.Paper, nil)
	geom := benchCfg.Platform.PartitionGeom()
	wayUnits := geom.Sets / 8 / geom.Ways
	b.ResetTimer()
	feasible := 0
	for i := 0; i < b.N; i++ {
		app, err := w.Factory()
		if err != nil {
			b.Fatal(err)
		}
		_, err = core.OptimizeFromCurves(app, s.Opt.Curves, core.OptimizeConfig{
			Platform: benchCfg.Platform,
			Sizes:    []int{wayUnits},
		})
		if err == nil {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible)/float64(b.N), "way-granularity-feasible")
}

// BenchmarkAssignment is extension X3: the section 3.1 assignment search
// over measured task times.
func BenchmarkAssignment(b *testing.B) {
	s := app1(b)
	cpus := benchCfg.Platform.NumCPUs
	b.ResetTimer()
	var lptMk, lsMk uint64
	for i := 0; i < b.N; i++ {
		lpt := core.AssignLPT(s.Part.TaskCycles, cpus)
		loads, err := core.ProcessorLoads(s.Part.TaskCycles, lpt, cpus)
		if err != nil {
			b.Fatal(err)
		}
		lptMk = core.Makespan(loads)
		ls := core.AssignLocalSearch(s.Part.TaskCycles, cpus, lpt)
		loads, _ = core.ProcessorLoads(s.Part.TaskCycles, ls, cpus)
		lsMk = core.Makespan(loads)
	}
	b.ReportMetric(float64(lptMk), "LPT-makespan")
	b.ReportMetric(float64(lsMk), "localsearch-makespan")
	b.Logf("\n%s", experiments.Assignment(s, cpus))
}

// benchRunStage measures one execution-engine stage — a full functional
// simulation of an application — under both engines, so engine wins are
// tracked separately from the profiling stage (BenchmarkFigure3*) and
// from the end-to-end pipeline.
func benchRunStage(b *testing.B, s *experiments.Study, w core.Workload, strategy core.Strategy) {
	for _, eng := range []platform.Engine{platform.EngineLineMerged, platform.EngineWordExact} {
		b.Run(eng.String(), func(b *testing.B) {
			rc := core.RunConfig{Platform: benchCfg.Platform, Strategy: strategy}
			rc.Platform.Engine = eng
			if strategy == core.Partitioned {
				rc.Alloc = s.Opt.Allocation
			}
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(w, rc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Platform.Makespan)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "simcycles/ns")
		})
	}
}

// BenchmarkRunSharedJpegCanny measures the shared-cache functional run of
// application 1 per execution engine.
func BenchmarkRunSharedJpegCanny(b *testing.B) {
	benchRunStage(b, nil, workloads.JPEGCanny(workloads.Paper, nil), core.Shared)
}

// BenchmarkRunSharedJpegCannyL3 measures the shared-cache run of
// application 1 on the built-in 3-level l3-shared tree (private L1 + L2
// under a shared 1 MB L3), per execution engine — the per-level walk
// cost next to BenchmarkRunSharedJpegCanny's 2-level tile.
func BenchmarkRunSharedJpegCannyL3(b *testing.B) {
	w := workloads.JPEGCanny(workloads.Paper, nil)
	for _, eng := range []platform.Engine{platform.EngineLineMerged, platform.EngineWordExact} {
		b.Run(eng.String(), func(b *testing.B) {
			rc := core.RunConfig{Platform: benchCfg.Platform}
			rc.Platform.Topology = experiments.L3SharedTopology()
			rc.Platform.Engine = eng
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Run(w, rc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Platform.Makespan)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "simcycles/ns")
		})
	}
}

// BenchmarkRunSharedMpeg2 measures the shared-cache functional run of the
// MPEG-2 decoder per execution engine.
func BenchmarkRunSharedMpeg2(b *testing.B) {
	benchRunStage(b, nil, workloads.MPEG2(workloads.Paper, nil), core.Shared)
}

// BenchmarkRunPartitionedJpegCanny measures the partitioned run of
// application 1 per execution engine.
func BenchmarkRunPartitionedJpegCanny(b *testing.B) {
	benchRunStage(b, app1(b), workloads.JPEGCanny(workloads.Paper, nil), core.Partitioned)
}

// BenchmarkRunPartitionedMpeg2 measures the partitioned run of the MPEG-2
// decoder per execution engine.
func BenchmarkRunPartitionedMpeg2(b *testing.B) {
	benchRunStage(b, app2(b), workloads.MPEG2(workloads.Paper, nil), core.Partitioned)
}

// BenchmarkSmallAppEndToEnd measures the simulator's throughput on the
// small-scale application (useful for tracking simulator performance).
func BenchmarkSmallAppEndToEnd(b *testing.B) {
	w := workloads.JPEGCanny(workloads.Small, nil)
	pc := experiments.Small().Platform
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(w, core.RunConfig{Platform: pc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadFactoryJpegCanny isolates application construction
// (content synthesis, tables, regions) — the setup cost shared by every
// Run* benchmark iteration, useful when attributing engine wins.
func BenchmarkWorkloadFactoryJpegCanny(b *testing.B) {
	w := workloads.JPEGCanny(workloads.Paper, nil)
	for i := 0; i < b.N; i++ {
		if _, err := w.Factory(); err != nil {
			b.Fatal(err)
		}
	}
}
