package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeBenchReport writes a minimal bench JSON document for benchdiff.
func writeBenchReport(t *testing.T, dir, name string, msPerOp float64) string {
	t.Helper()
	rep := benchReport{
		GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, Scale: "small",
		Benchmarks: []benchResult{
			{Name: "profile/app1", Iterations: 3, MsPerOp: msPerOp, NsPerOp: int64(msPerOp * 1e6)},
		},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchDiffStrict pins the two exit modes: a regression past the
// threshold is annotate-only by default (CI stays green and greps the
// WARN lines) and a hard failure under -strict. A clean comparison
// passes in both modes.
func TestBenchDiffStrict(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchReport(t, dir, "base.json", 100)
	regressed := writeBenchReport(t, dir, "regressed.json", 200)
	steady := writeBenchReport(t, dir, "steady.json", 101)

	if err := runBenchDiff([]string{base, regressed}); err != nil {
		t.Errorf("default mode must stay exit-0 on regressions, got %v", err)
	}
	if err := runBenchDiff([]string{"-strict", base, regressed}); err == nil {
		t.Error("-strict must fail on a regression past the threshold")
	}
	if err := runBenchDiff([]string{"-strict", base, steady}); err != nil {
		t.Errorf("-strict must pass a within-threshold comparison, got %v", err)
	}
	// A missing stage is a warning, so strict mode must also catch it.
	missing := filepath.Join(dir, "missing.json")
	raw, _ := json.Marshal(benchReport{Scale: "small"})
	if err := os.WriteFile(missing, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBenchDiff([]string{"-strict", base, missing}); err == nil {
		t.Error("-strict must fail when a baseline stage disappears")
	}
}
