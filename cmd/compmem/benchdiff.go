package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// runBenchDiff compares two machine-readable bench reports (the output
// of `compmem -json bench`) stage by stage and prints the deltas.
// Stages that got slower than the threshold emit WARN lines; CI greps
// those into annotations. By default the exit status stays 0 on
// regressions — baselines are recorded on whatever machine produced
// them, so a delta is a signal to inspect, not a build failure; only
// malformed input or a baseline/current stage mismatch is an error.
// -strict flips that: any warning fails the command, for gates run on
// hardware that matches the baseline.
func runBenchDiff(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 15, "regression warning threshold, percent")
	strict := fs.Bool("strict", false, "exit non-zero when any stage regresses past the threshold (default: warnings only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("benchdiff: usage: compmem benchdiff [-threshold PCT] [-strict] baseline.json current.json")
	}
	base, err := readBenchReport(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := readBenchReport(fs.Arg(1))
	if err != nil {
		return err
	}
	if base.Scale != cur.Scale {
		return fmt.Errorf("benchdiff: scale mismatch: baseline is %q, current is %q", base.Scale, cur.Scale)
	}

	baseByName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}

	warns := 0
	fmt.Printf("%-40s %12s %12s %8s\n", "stage", "base ms", "current ms", "delta")
	for _, c := range cur.Benchmarks {
		b, ok := baseByName[c.Name]
		if !ok {
			fmt.Printf("%-40s %12s %12.1f %8s\n", c.Name, "-", c.MsPerOp, "new")
			continue
		}
		delta := pctChange(b.MsPerOp, c.MsPerOp)
		fmt.Printf("%-40s %12.1f %12.1f %+7.1f%%\n", c.Name, b.MsPerOp, c.MsPerOp, delta)
		if delta > *threshold {
			warns++
			fmt.Printf("WARN: %s is %.1f%% slower than the baseline (%.1f ms -> %.1f ms)\n",
				c.Name, delta, b.MsPerOp, c.MsPerOp)
		}
		// The batch stages carry throughput and GC-pressure metrics
		// beyond wall time; regressions there are exactly what the
		// zero-alloc core is meant to hold.
		if b.PointsPerSec > 0 && c.PointsPerSec > 0 {
			// Higher is better: the drop is measured against the baseline.
			if d := -pctChange(b.PointsPerSec, c.PointsPerSec); d > *threshold {
				warns++
				fmt.Printf("WARN: %s throughput fell %.1f%% (%.2f -> %.2f points/sec)\n",
					c.Name, d, b.PointsPerSec, c.PointsPerSec)
			}
		}
		if b.BytesPerPoint > 0 && c.BytesPerPoint > 0 {
			if d := pctChange(float64(b.BytesPerPoint), float64(c.BytesPerPoint)); d > *threshold {
				warns++
				fmt.Printf("WARN: %s allocates %.1f%% more per point (%d -> %d bytes)\n",
					c.Name, d, b.BytesPerPoint, c.BytesPerPoint)
			}
		}
	}
	for _, b := range base.Benchmarks {
		found := false
		for _, c := range cur.Benchmarks {
			if c.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("WARN: baseline stage %s missing from the current report\n", b.Name)
			warns++
		}
	}
	if warns > 0 {
		fmt.Printf("benchdiff: %d warning(s) at the %.0f%% threshold\n", warns, *threshold)
		if *strict {
			return fmt.Errorf("benchdiff: %d regression(s) past the %.0f%% threshold (strict mode)", warns, *threshold)
		}
	} else {
		fmt.Printf("benchdiff: no stage regressed more than %.0f%%\n", *threshold)
	}
	return nil
}

// pctChange returns how much worse cur is than base, in percent, where
// larger cur is worse. Callers flip the arguments for higher-is-better
// metrics.
func pctChange(base, cur float64) float64 {
	if base == 0 {
		return math.Inf(1)
	}
	return (cur - base) / base * 100
}

func readBenchReport(path string) (*benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return &rep, nil
}
