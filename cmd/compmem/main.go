// Command compmem regenerates the evaluation artifacts of "Compositional
// memory systems for multimedia communicating tasks" (Molnos et al.,
// DATE 2005) on the simulated CAKE platform.
//
// Usage:
//
//	compmem [-small] [-runs N] [-solver mckp|ilp] <command>
//
// Commands:
//
//	table1    optimized L2 allocation for 2×JPEG + Canny (paper Table 1)
//	table2    optimized L2 allocation for MPEG-2 (paper Table 2)
//	fig2      shared vs partitioned misses per entity (paper Figure 2)
//	fig3      expected vs simulated misses (paper Figure 3)
//	headline  miss ratios, miss rates and CPI for both apps (section 5)
//	compose   compositionality ablation: jpeg1 alone vs co-scheduled (X1)
//	granularity  set- vs way-partitioning comparison (X2)
//	assign    task-to-processor assignment search, section 3.1 model (X3)
//	split     task-unified vs split instruction/data partitions (X4)
//	migration schedule sensitivity under task migration (X5)
//	curves    dump the profiled per-entity miss curves m_i(z_p)
//	bench     time the execution-engine stages (-json for bench.json output)
//	all       everything above except bench
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	small := flag.Bool("small", false, "use the fast, small-scale workloads")
	runs := flag.Int("runs", 2, "profiling repetitions for miss-curve averaging")
	solver := flag.String("solver", "mckp", "partitioning solver: mckp or ilp")
	engine := flag.String("engine", "stackdist", "profiling engine: stackdist or bank")
	exec := flag.String("exec", "merged", "execution engine: merged (exact line-merged fast path) or word (reference oracle)")
	workers := flag.Int("workers", 0, "harness worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	benchN := flag.Int("benchn", 3, "iterations per stage for the bench command (best is reported)")
	asJSON := flag.Bool("json", false, "bench command: emit machine-readable JSON on stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the command to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: compmem [flags] table1|table2|fig2|fig3|headline|compose|granularity|split|migration|assign|curves|bench|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Default()
	if *small {
		cfg = experiments.Small()
	}
	cfg.ProfileRuns = *runs
	cfg.Workers = *workers
	switch *solver {
	case "mckp":
		cfg.Solver = core.SolverMCKP
	case "ilp":
		cfg.Solver = core.SolverILP
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}
	switch *engine {
	case "stackdist":
		cfg.Engine = profile.EngineStackDist
	case "bank":
		cfg.Engine = profile.EngineBank
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	ee, err := platform.ParseEngine(*exec)
	if err != nil {
		fatal(err)
	}
	cfg.Platform.Engine = ee

	profiling := false
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		profiling = true
	}

	cmd := flag.Arg(0)
	if cmd == "bench" {
		err = runBench(cfg, *benchN, *asJSON)
	} else {
		err = run(cmd, cfg)
	}
	// Complete both profiles before any exit path — a failing run is
	// exactly the one a user wants to profile.
	if profiling {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		// Materialize the live heap: without a collection the profile
		// only reflects the last automatic GC cycle.
		runtime.GC()
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatal(ferr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compmem:", err)
	os.Exit(1)
}

func run(cmd string, cfg experiments.Config) error {
	switch cmd {
	case "table1":
		s, err := experiments.App1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AllocationTable(s, "Table 1: allocated L2 units, 2 jpegs & canny"))
	case "table2":
		s, err := experiments.App2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AllocationTable(s, "Table 2: allocated L2 units, mpeg2"))
	case "fig2":
		for _, f := range []func(experiments.Config) (*experiments.Study, error){
			experiments.App1, experiments.App2,
		} {
			s, err := f(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Figure2(s))
			fmt.Printf("total: shared %d vs partitioned %d (%.2fx)\n\n",
				s.Shared.TotalMisses(), s.Part.TotalMisses(), s.MissRatio())
		}
	case "fig3":
		for _, f := range []func(experiments.Config) (*experiments.Study, error){
			experiments.App1, experiments.App2,
		} {
			s, err := f(cfg)
			if err != nil {
				return err
			}
			chart, rep := experiments.Figure3(s)
			fmt.Println(chart)
			fmt.Printf("compositional at the paper's 2%% threshold: %v (max %.3f%%, mean %.3f%%)\n\n",
				rep.Compositional(0.02), rep.MaxRelDiff*100, rep.MeanRelDiff*100)
		}
	case "curves":
		curves, err := core.Profile(workloadFor(cfg, true), core.OptimizeConfig{
			Platform: cfg.Platform, Runs: cfg.ProfileRuns, Solver: cfg.Solver,
			Engine: cfg.Engine, Workers: cfg.Workers,
		})
		if err != nil {
			return err
		}
		printCurves("2jpeg+canny", curves)
		curves, err = core.Profile(workloadFor(cfg, false), core.OptimizeConfig{
			Platform: cfg.Platform, Runs: cfg.ProfileRuns, Solver: cfg.Solver,
			Engine: cfg.Engine, Workers: cfg.Workers,
		})
		if err != nil {
			return err
		}
		printCurves("mpeg2", curves)
	case "headline":
		tab, _, err := experiments.Headline(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	case "compose":
		_, tab, err := experiments.Composition(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	case "granularity":
		tab, err := experiments.Granularity(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	case "split":
		tab, err := experiments.SplitSections(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	case "migration":
		tab, err := experiments.Migration(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	case "assign":
		s, err := experiments.App1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Assignment(s, cfg.Platform.NumCPUs))
		s2, err := experiments.App2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Assignment(s2, cfg.Platform.NumCPUs))
	case "all":
		for _, c := range []string{"headline", "table1", "table2", "fig2", "fig3", "compose", "granularity", "split", "migration", "assign"} {
			if err := run(c, cfg); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// workloadFor selects one of the two evaluation applications.
func workloadFor(cfg experiments.Config, app1 bool) core.Workload {
	if app1 {
		return workloads.JPEGCanny(cfg.Scale, nil)
	}
	return workloads.MPEG2(cfg.Scale, nil)
}

// printCurves dumps the per-entity miss curves m_i(z_p), the raw input of
// the section 3.2 optimization.
func printCurves(app string, curves []profile.Curve) {
	fmt.Printf("miss curves m_i(z) for %s (misses at 1..128 units):\n", app)
	for _, c := range curves {
		if c.Accesses == 0 {
			continue
		}
		fmt.Printf("  %-14s acc=%8.0f  ", c.Entity, c.Accesses)
		for k, m := range c.Misses {
			fmt.Printf("%d:%.0f ", c.Sizes[k], m)
		}
		fmt.Println()
	}
}
