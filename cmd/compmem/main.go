// Command compmem regenerates the evaluation artifacts of "Compositional
// memory systems for multimedia communicating tasks" (Molnos et al.,
// DATE 2005) on the simulated CAKE platform, and exposes the declarative
// scenario API: every command below resolves to built-in scenario specs
// executed on a memoizing batch runner, arbitrary specs run from JSON
// files, and `serve` exposes the same surface over HTTP.
//
// Usage:
//
//	compmem [-small] [-runs N] [-solver mckp|ilp] [-json] <command>
//
// Commands:
//
//	table1    optimized L2 allocation for 2×JPEG + Canny (paper Table 1)
//	table2    optimized L2 allocation for MPEG-2 (paper Table 2)
//	fig2      shared vs partitioned misses per entity (paper Figure 2)
//	fig3      expected vs simulated misses (paper Figure 3)
//	headline  miss ratios, miss rates and CPI for both apps (section 5)
//	compose   compositionality ablation: jpeg1 alone vs co-scheduled (X1)
//	granularity  set- vs way-partitioning comparison (X2)
//	assign    task-to-processor assignment search, section 3.1 model (X3)
//	split     task-unified vs split instruction/data partitions (X4)
//	migration schedule sensitivity under task migration (X5)
//	curves    dump the profiled per-entity miss curves m_i(z_p)
//	bench     time the execution-engine stages (-json for bench.json output)
//	benchdiff compare two bench JSON reports; warn on regressions:
//	          benchdiff [-threshold PCT] [-strict] baseline.json current.json
//	          (-strict exits non-zero on any regression; the default stays annotate-only)
//	all       everything above except bench
//	trace     record, inspect and replay access-stream traces:
//	          trace record -workload NAME [-scale small|paper] [-seed N] [-o file.ctr]
//	          trace info file.ctr | trace replay [-verify=false] file.ctr
//	run       execute scenario specs: run -scenario file.json [-trace file.ctr] [-store-dir DIR] [-json]
//	sweep     expand and run a parameter sweep: sweep -spec file.json|paper-grid [-max-points N] [-json]
//	explore   budgeted Pareto-guided search over a sweep space:
//	          explore -spec file.json|paper-grid [-budget N] [-checkpoint DIR] [-resume] [-store-dir DIR] [-json]
//	serve     HTTP scenario service: serve [-addr :8080] [-store-dir DIR] [-max-inflight N] [-queue N] [-request-timeout D] [-drain D]
//	scenarios list built-in scenarios, sweeps and registered workloads
//
// With -json, every evaluation command emits its artifacts as versioned
// JSON envelopes instead of text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// newRunner builds the scenario runner, optionally backed by the
// crash-safe on-disk result store at storeDir (created if missing).
// The disk layer is wrapped for resilience: transient I/O errors are
// retried with backoff, and a persistently failing volume trips the
// store into memory-only degradation instead of failing scenarios.
func newRunner(cfg experiments.Config, storeDir string) (*scenario.Runner, error) {
	if storeDir == "" {
		return scenario.NewRunner(cfg.Workers), nil
	}
	ds, err := store.OpenDisk(storeDir)
	if err != nil {
		return nil, err
	}
	return scenario.NewRunnerWithStore(cfg.Workers, store.NewResilient(ds, store.ResilientOptions{})), nil
}

func main() {
	small := flag.Bool("small", false, "use the fast, small-scale workloads")
	runs := flag.Int("runs", 2, "profiling repetitions for miss-curve averaging")
	solver := flag.String("solver", "mckp", "partitioning solver: mckp or ilp")
	engine := flag.String("engine", "stackdist", "profiling engine: stackdist or bank")
	exec := flag.String("exec", "merged", "execution engine: merged (exact line-merged fast path) or word (reference oracle)")
	workers := flag.Int("workers", 0, "harness worker pool size; 0 = GOMAXPROCS, 1 = sequential")
	benchN := flag.Int("benchn", 3, "iterations per stage for the bench command (best is reported)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON envelopes on stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the command to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: compmem [flags] table1|table2|fig2|fig3|headline|compose|granularity|split|migration|assign|curves|bench|benchdiff|all|trace|run|sweep|explore|serve|scenarios\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := experiments.ConfigFromFlags(experiments.Flags{
		Small:         *small,
		Runs:          *runs,
		Solver:        *solver,
		ProfileEngine: *engine,
		ExecEngine:    *exec,
		Workers:       *workers,
	})
	if err != nil {
		fatal(err)
	}

	profiling := false
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		profiling = true
	}

	cmd, rest := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "bench":
		err = expectNoArgs(cmd, rest)
		if err == nil {
			err = runBench(cfg, *benchN, *asJSON)
		}
	case "benchdiff":
		err = runBenchDiff(rest)
	case "trace":
		err = runTrace(cfg, rest, *asJSON)
	case "run":
		err = runScenarios(cfg, rest, *asJSON)
	case "sweep":
		err = runSweep(cfg, rest, *asJSON)
	case "explore":
		err = runExplore(cfg, rest, *asJSON)
	case "serve":
		err = runServe(cfg, rest)
	case "scenarios":
		err = expectNoArgs(cmd, rest)
		if err == nil {
			err = listScenarios(cfg, *asJSON)
		}
	default:
		err = expectNoArgs(cmd, rest)
		if err == nil {
			err = runCommand(cmd, cfg, *asJSON)
		}
	}
	// Complete both profiles before any exit path — a failing run is
	// exactly the one a user wants to profile.
	if profiling {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		// Materialize the live heap: without a collection the profile
		// only reflects the last automatic GC cycle.
		runtime.GC()
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatal(ferr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compmem:", err)
	os.Exit(1)
}

// expectNoArgs rejects stray arguments after commands that take none,
// so `compmem fig2 fig3` fails loudly instead of dropping fig3.
func expectNoArgs(cmd string, rest []string) error {
	if len(rest) != 0 {
		return fmt.Errorf("%s takes no arguments (got %q)", cmd, rest)
	}
	return nil
}

// runCommand executes one evaluation command through the scenario layer
// and prints the legacy text (or, with -json, the artifact envelopes).
func runCommand(cmd string, cfg experiments.Config, asJSON bool) error {
	rn := scenario.NewRunner(cfg.Workers)
	out, err := experiments.RunCommand(cmd, cfg, rn)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out.Documents)
	}
	fmt.Print(out.Text)
	return nil
}

// runScenarios executes arbitrary scenario specs from a JSON file (a
// single spec, an array, or {"scenarios":[...]}; specs may overlay any
// built-in through "base"). A bare built-in name also works.
func runScenarios(cfg experiments.Config, args []string, asJSON bool) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	path := fs.String("scenario", "", "scenario spec: a JSON file or a built-in scenario name")
	traceFile := fs.String("trace", "", "import a recorded trace file as a workload named trace:<recorded workload> before running")
	storeDir := fs.String("store-dir", "", "durable result store directory: completed pipeline stages persist here and warm-serve across runs")
	subJSON := fs.Bool("json", false, "emit result documents as JSON (one envelope per scenario)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("run: -scenario file.json (or a built-in name) is required")
	}
	if *traceFile != "" {
		t, err := tracefile.ReadFile(*traceFile)
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		name := "trace:" + t.Header.Meta.Workload
		if err := tracefile.RegisterWorkload(name, t); err != nil {
			return fmt.Errorf("run: %w", err)
		}
		fmt.Fprintf(os.Stderr, "compmem: imported %s as workload %q\n", *traceFile, name)
	}
	specs, err := loadSpecs(cfg, *path)
	if err != nil {
		return err
	}
	rn, err := newRunner(cfg, *storeDir)
	if err != nil {
		return err
	}
	defer rn.Close()
	results := rn.RunBatch(specs)

	if asJSON || *subJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(r.Envelope()); err != nil {
				return err
			}
		}
	} else {
		for i, r := range results {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(experiments.RenderResult(r))
		}
	}
	for i, r := range results {
		if r.Error != "" {
			return fmt.Errorf("scenario %d: %s", i, r.Error)
		}
	}
	return nil
}

// loadSpecs reads scenario specs from a file, or resolves a built-in
// scenario name.
func loadSpecs(cfg experiments.Config, path string) ([]scenario.Scenario, error) {
	lookup := func(name string) (scenario.Scenario, bool) {
		return experiments.BuiltinScenario(cfg, name)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if spec, ok := lookup(path); ok {
			return []scenario.Scenario{spec}, nil
		}
		return nil, fmt.Errorf("run: %w (and %q is not a built-in scenario; see `compmem scenarios`)", err, path)
	}
	raws, err := scenario.SplitSpecs(raw)
	if err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	specs := make([]scenario.Scenario, len(raws))
	for i, r := range raws {
		spec, err := scenario.Resolve(r, lookup)
		if err != nil {
			return nil, fmt.Errorf("run: scenario %d: %w", i, err)
		}
		specs[i] = spec
	}
	return specs, nil
}

// runSweep expands and executes a declarative parameter sweep from a
// JSON spec file or a built-in sweep name.
func runSweep(cfg experiments.Config, args []string, asJSON bool) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	path := fs.String("spec", "", "sweep spec: a JSON file or a built-in sweep name (see `compmem scenarios`)")
	maxPoints := fs.Int("max-points", 0, "cap the expansion to the first N points (0 = the spec's own max_points)")
	subJSON := fs.Bool("json", false, "stream per-point envelopes plus the final aggregate as NDJSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("sweep: -spec file.json (or a built-in name, e.g. %q) is required", experiments.SweepPaperGrid)
	}
	lookup := func(name string) (scenario.Scenario, bool) {
		return experiments.BuiltinScenario(cfg, name)
	}
	var sw sweep.Sweep
	if raw, err := os.ReadFile(*path); err == nil {
		if sw, err = sweep.Parse(raw, lookup); err != nil {
			return err // already "sweep:"-prefixed
		}
	} else if builtin, ok := experiments.BuiltinSweep(cfg, *path); ok {
		sw = builtin
	} else {
		return fmt.Errorf("sweep: %w (and %q is not a built-in sweep; built-ins: %v)", err, *path, experiments.BuiltinSweepNames())
	}
	if *maxPoints > 0 {
		sw.MaxPoints = *maxPoints
	}

	rn := scenario.NewRunner(cfg.Workers)
	var observe func(sweep.PointResult)
	var encErr error
	enc := json.NewEncoder(os.Stdout)
	if asJSON || *subJSON {
		observe = func(p sweep.PointResult) {
			if err := enc.Encode(p.Envelope()); err != nil && encErr == nil {
				encErr = err
			}
		}
	}
	res, err := sweep.Execute(context.Background(), rn, sw, observe)
	if err != nil {
		return err // expansion errors are already "sweep:"-prefixed
	}
	if encErr != nil {
		return fmt.Errorf("sweep: writing point envelopes: %w", encErr)
	}
	if asJSON || *subJSON {
		if err := enc.Encode(res.Envelope()); err != nil {
			return err
		}
	} else {
		fmt.Print(sweep.Render(res))
	}
	// Individual point failures are data (exploratory grids legitimately
	// contain infeasible corners), but a sweep where nothing succeeded
	// must not exit 0 — in either output mode.
	if res.Failed == res.Executed && res.Executed > 0 {
		return fmt.Errorf("sweep: every point failed (first error: %s)", firstError(res))
	}
	return nil
}

// firstError returns the lowest-index point failure of a sweep.
func firstError(res *sweep.Result) string {
	for _, p := range res.Points {
		if p.Error != "" {
			return p.Error
		}
	}
	return "none recorded"
}

// runServe starts the HTTP scenario service with admission control and
// a signal-driven graceful drain: SIGINT/SIGTERM stops accepting new
// work and lets in-flight streams finish within the -drain budget.
func runServe(cfg experiments.Config, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	storeDir := fs.String("store-dir", "", "durable result store directory: completed pipeline stages persist here and warm-serve across restarts")
	maxInflight := fs.Int("max-inflight", serve.DefaultMaxInflight, "max concurrently admitted simulation requests")
	queue := fs.Int("queue", serve.DefaultQueue, "wait-queue slots beyond -max-inflight before shedding with 429 (negative disables queueing)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request simulation deadline (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain budget for in-flight streams on SIGINT/SIGTERM (0 = wait indefinitely)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rn, err := newRunner(cfg, *storeDir)
	if err != nil {
		return err
	}
	defer rn.Close()
	logger := log.New(os.Stderr, "compmem: ", log.LstdFlags)
	s := serve.NewWithOptions(cfg, rn, serve.Options{
		MaxInflight:    *maxInflight,
		Queue:          *queue,
		RequestTimeout: *requestTimeout,
		Logf:           logger.Printf,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("serving scenario API on %s (store: %s, workloads: %v)", l.Addr(), rn.StoreMode(), workloads.Names())
	return s.Serve(ctx, l, *drain)
}

// listScenarios prints the built-in scenario names and registered
// workloads.
func listScenarios(cfg experiments.Config, asJSON bool) error {
	defs := experiments.BuiltinScenarios(cfg)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]interface{}{
			"scenarios": defs,
			"sweeps":    experiments.BuiltinSweepNames(),
			"workloads": workloads.Names(),
		})
	}
	fmt.Println("built-in scenarios (usable as `run -scenario <name>` or as a spec's \"base\"):")
	for _, n := range experiments.BuiltinNames() {
		s, err := defs[n].Normalize()
		if err != nil {
			return err
		}
		extra := ""
		if s.AllocWorkload != "" {
			extra = fmt.Sprintf(", alloc from %s", s.AllocWorkload)
		}
		if s.Migration {
			extra += ", migration"
		}
		fmt.Printf("  %-16s %s partition of %s%s\n", n, s.Partition, s.Workload, extra)
	}
	fmt.Printf("built-in sweeps (usable as `sweep -spec <name>`): %v\n", experiments.BuiltinSweepNames())
	fmt.Printf("registered workloads: %v\n", workloads.Names())
	return nil
}
