package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// runTrace dispatches the trace subcommands: `record` captures a
// workload's access stream into a .ctr file, `info` prints a trace
// file's header and totals, `replay` drives a measured execution from a
// trace file (optionally re-capturing it first to verify the file is
// byte-exact under replay).
func runTrace(cfg experiments.Config, args []string, asJSON bool) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: want a subcommand: record | info | replay")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "record":
		return traceRecord(rest)
	case "info":
		return traceInfo(rest, asJSON)
	case "replay":
		return traceReplay(cfg, rest)
	}
	return fmt.Errorf("trace: unknown subcommand %q (want record, info or replay)", sub)
}

// traceRecord captures one live functional run of a registered workload
// into a trace file.
func traceRecord(args []string) error {
	fs := flag.NewFlagSet("trace record", flag.ContinueOnError)
	workload := fs.String("workload", "", "registered workload to record (see `compmem scenarios`)")
	scale := fs.String("scale", "paper", "workload scale: small or paper")
	seed := fs.Uint64("seed", 0, "synthetic-input seed (0 = the canonical paper workload)")
	out := fs.String("o", "", "output trace file (default <workload>.ctr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" {
		return fmt.Errorf("trace record: -workload is required (registered: %v)", workloads.Names())
	}
	sc, err := workloads.ParseScale(*scale)
	if err != nil {
		return err
	}
	w, err := workloads.Build(*workload, workloads.BuildConfig{Scale: sc, Seed: *seed})
	if err != nil {
		return err
	}
	t, err := tracefile.Capture(w, tracefile.Meta{Workload: *workload, Scale: sc.String(), Seed: *seed})
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *workload + ".ctr"
	}
	if err := t.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("recorded %s (%s scale, seed %d): %d tasks, %d events, %d instrs, %d bytes -> %s\n",
		*workload, sc.String(), *seed, len(t.Header.Tasks), t.Header.Events, t.Header.Instrs, t.Size(), path)
	return nil
}

// traceInfo prints a trace file's identity, topology and totals.
func traceInfo(args []string, asJSON bool) error {
	fs := flag.NewFlagSet("trace info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace info: want exactly one trace file")
	}
	t, err := tracefile.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]interface{}{
			"header": t.Header,
			"totals": t.Totals,
			"bytes":  t.Size(),
		})
	}
	h := t.Header
	fmt.Printf("%s: app %q (workload %q, %s scale, seed %d), format v%d, %d bytes\n",
		fs.Arg(0), h.App, h.Meta.Workload, h.Meta.Scale, h.Meta.Seed, tracefile.Version, t.Size())
	fmt.Printf("  totals: %d events, %d instrs, %d accesses, %d bulk ops (%d bytes), %d fifo ops\n",
		t.Totals.Events, t.Totals.Instrs, t.Totals.Accesses, t.Totals.BulkOps, t.Totals.BulkBytes, t.Totals.FIFOOps)
	fmt.Printf("  topology: %d regions, %d fifos, %d frames\n", len(h.Regions), len(h.FIFOs), len(h.Frames))
	for i, task := range h.Tasks {
		fmt.Printf("  task %-14s cpu %d  %8d events  %10d stream bytes\n",
			task.Name, task.CPU, h.Streams[i].Events, len(t.Stream(i)))
	}
	return nil
}

// traceReplay rebuilds the recorded application from a trace file and
// drives one measured shared-cache execution with the configured
// platform and engine. With -verify it first re-captures the replayed
// application and proves the bytes identical to the file — the replay ≡
// live exactness check, applied to this concrete trace.
func traceReplay(cfg experiments.Config, args []string) error {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	verify := fs.Bool("verify", true, "re-capture the replayed app and require byte-identity with the file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace replay: want exactly one trace file")
	}
	t, err := tracefile.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *verify {
		re, err := tracefile.Capture(t.Workload(""), t.Header.Meta)
		if err != nil {
			return fmt.Errorf("trace replay: re-capture: %w", err)
		}
		if !bytes.Equal(re.Bytes(), t.Bytes()) {
			return fmt.Errorf("trace replay: re-captured stream differs from the file (%d vs %d bytes)", re.Size(), t.Size())
		}
		fmt.Printf("verified: capture(replay(%s)) is byte-identical (%d bytes)\n", fs.Arg(0), t.Size())
	}
	res, err := core.Run(t.Workload(""), core.RunConfig{Platform: cfg.Platform})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %q on engine %s: makespan %d cycles, %d instrs, %d misses, CPI %.3f\n",
		res.App, cfg.Platform.Engine, res.Platform.Makespan, res.Platform.TotalInstrs, res.TotalMisses(), res.CPIMean)
	return nil
}
