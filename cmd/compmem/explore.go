package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// runExplore runs a budgeted Pareto-guided exploration of a sweep-defined
// space from a JSON spec file or a built-in sweep name. With -checkpoint
// the spec and the visited-point log persist after every round; -resume
// picks the search up exactly where the log ends, and a -store-dir shared
// with the earlier run turns every already simulated point into memo
// hits, so a killed exploration resumes with zero re-executed stages.
func runExplore(cfg experiments.Config, args []string, asJSON bool) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	path := fs.String("spec", "", "exploration spec: a JSON file, or a built-in sweep name explored under the default strategy")
	budget := fs.Int("budget", 0, "override the spec's point budget for this run (0 = the spec's own; the checkpoint fingerprint ignores it)")
	checkpointDir := fs.String("checkpoint", "", "checkpoint directory: receives the spec and an atomically updated visited-point log after every round")
	resume := fs.Bool("resume", false, "resume from the checkpoint in -checkpoint (with -spec omitted, the directory's own spec is used)")
	storeDir := fs.String("store-dir", "", "durable result store directory: completed pipeline stages persist here and warm-serve a resumed exploration")
	subJSON := fs.Bool("json", false, "stream per-point envelopes plus the final aggregate as NDJSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ex explore.Explore
	switch {
	case *path != "":
		lookupBase := func(name string) (scenario.Scenario, bool) { return experiments.BuiltinScenario(cfg, name) }
		lookupSweep := func(name string) (sweep.Sweep, bool) { return experiments.BuiltinSweep(cfg, name) }
		if raw, err := os.ReadFile(*path); err == nil {
			if ex, err = explore.Parse(raw, lookupBase, lookupSweep); err != nil {
				return err // already "explore:"-prefixed
			}
		} else if sw, ok := experiments.BuiltinSweep(cfg, *path); ok {
			ex = explore.Explore{Name: sw.Name, Sweep: sw}
		} else {
			return fmt.Errorf("explore: %w (and %q is not a built-in sweep; built-ins: %v)", err, *path, experiments.BuiltinSweepNames())
		}
	case *resume && *checkpointDir != "":
		var err error
		if ex, err = explore.LoadSpec(*checkpointDir); err != nil {
			return err
		}
	default:
		return fmt.Errorf("explore: -spec file.json (or a built-in sweep name, e.g. %q) is required unless -resume -checkpoint carries one", experiments.SweepPaperGrid)
	}

	rn, err := newRunner(cfg, *storeDir)
	if err != nil {
		return err
	}
	defer rn.Close()

	var observe func(explore.PointResult)
	var encErr error
	enc := json.NewEncoder(os.Stdout)
	if asJSON || *subJSON {
		observe = func(p explore.PointResult) {
			if err := enc.Encode(p.Envelope()); err != nil && encErr == nil {
				encErr = err
			}
		}
	}
	res, err := explore.Run(context.Background(), rn, ex, explore.Options{
		Budget:        *budget,
		CheckpointDir: *checkpointDir,
		Resume:        *resume,
	}, observe)
	if err != nil {
		return err // search errors are already "explore:"-prefixed
	}
	if encErr != nil {
		return fmt.Errorf("explore: writing point envelopes: %w", encErr)
	}
	if asJSON || *subJSON {
		if err := enc.Encode(res.Envelope()); err != nil {
			return err
		}
	} else {
		fmt.Print(explore.Render(res))
	}
	// As with sweeps, individual point failures are data, but an
	// exploration where nothing succeeded must not exit 0.
	if res.Visited > 0 && res.Failed == res.Visited {
		return fmt.Errorf("explore: every visited point failed")
	}
	return nil
}
