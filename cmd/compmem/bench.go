package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// benchResult is one timed stage, in the machine-readable shape of
// `compmem bench -json` (the seed of the BENCH_* performance trajectory).
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      string        `json:"scale"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBench times the execution-engine stages — the functional shared and
// partitioned runs plus the full profiling pipeline, per application and
// per engine — and renders a table or JSON. Each stage runs iters times;
// the minimum is reported (the conventional noise-resistant statistic).
func runBench(cfg experiments.Config, iters int, asJSON bool) error {
	if iters <= 0 {
		iters = 3
	}
	scale := "paper"
	if cfg.Scale == workloads.Small {
		scale = "small"
	}
	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	apps := []struct {
		name string
		w    core.Workload
	}{
		{"2jpeg+canny", workloads.JPEGCanny(cfg.Scale, nil)},
		{"mpeg2", workloads.MPEG2(cfg.Scale, nil)},
	}
	engines := []platform.Engine{platform.EngineLineMerged, platform.EngineWordExact}

	measure := func(name string, fn func() error) error {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("bench %s: %w", name, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:       name,
			Iterations: iters,
			NsPerOp:    best.Nanoseconds(),
			MsPerOp:    float64(best.Nanoseconds()) / 1e6,
		})
		return nil
	}

	for _, app := range apps {
		// One optimize per app provides the partitioned runs' allocation.
		opt, err := core.Optimize(app.w, cfg.OptimizeConfig())
		if err != nil {
			return err
		}
		// The trace stages: capture cost (one live functional run plus
		// encoding), and the warm profiling pipeline driven by replay —
		// the path every scenario stage takes once the trace exists.
		var tr *tracefile.Trace
		if err := measure(fmt.Sprintf("trace-capture-%s", app.name), func() error {
			var err error
			tr, err = tracefile.Capture(app.w, tracefile.Meta{Workload: app.name, Scale: scale})
			return err
		}); err != nil {
			return err
		}
		if err := measure(fmt.Sprintf("trace-replay-profile-%s", app.name), func() error {
			oc := cfg.OptimizeConfig()
			oc.Runs = 1
			_, err := core.Profile(tr.Workload(app.name), oc)
			return err
		}); err != nil {
			return err
		}
		for _, eng := range engines {
			pc := cfg.Platform
			pc.Engine = eng
			w := app.w
			if err := measure(fmt.Sprintf("run-shared-%s/%s", app.name, eng), func() error {
				_, err := core.Run(w, core.RunConfig{Platform: pc})
				return err
			}); err != nil {
				return err
			}
			if err := measure(fmt.Sprintf("run-partitioned-%s/%s", app.name, eng), func() error {
				_, err := core.Run(w, core.RunConfig{Platform: pc, Strategy: core.Partitioned, Alloc: opt.Allocation})
				return err
			}); err != nil {
				return err
			}
			if err := measure(fmt.Sprintf("profile-pipeline-%s/%s", app.name, eng), func() error {
				oc := cfg.OptimizeConfig()
				oc.Platform.Engine = eng
				oc.Runs = 1
				_, err := core.Profile(w, oc)
				return err
			}); err != nil {
				return err
			}
		}
	}

	// The 3-level l3-shared tree next to the 2-level runs, so the
	// per-level walk cost shows up in the BENCH_* trajectory.
	l3w := workloads.JPEGCanny(cfg.Scale, nil)
	for _, eng := range engines {
		pc := cfg.Platform
		pc.Topology = experiments.L3SharedTopology()
		pc.Engine = eng
		if err := measure(fmt.Sprintf("run-shared-l3-2jpeg+canny/%s", eng), func() error {
			_, err := core.Run(l3w, core.RunConfig{Platform: pc})
			return err
		}); err != nil {
			return err
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("execution-engine benchmarks (%s scale, best of %d, GOMAXPROCS=%d)\n",
		rep.Scale, iters, rep.GOMAXPROCS)
	for _, b := range rep.Benchmarks {
		fmt.Printf("  %-44s %10.1f ms\n", b.Name, b.MsPerOp)
	}
	return nil
}
