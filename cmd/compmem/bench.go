package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// benchResult is one timed stage, in the machine-readable shape of
// `compmem bench -json` (the seed of the BENCH_* performance trajectory).
// The batch stages additionally report throughput and GC pressure: the
// north-star metric is aggregate points/sec across a fleet of
// simulations, not single-run latency.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`

	Points        int     `json:"points,omitempty"`
	PointsPerSec  float64 `json:"points_per_sec,omitempty"`
	BytesPerPoint int64   `json:"bytes_per_point,omitempty"`
	GCPerPoint    float64 `json:"gc_per_point,omitempty"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      string        `json:"scale"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBench times the execution-engine stages — the functional shared and
// partitioned runs plus the full profiling pipeline, per application and
// per engine — and renders a table or JSON. Each stage runs iters times;
// the minimum is reported (the conventional noise-resistant statistic).
func runBench(cfg experiments.Config, iters int, asJSON bool) error {
	if iters <= 0 {
		iters = 3
	}
	scale := "paper"
	if cfg.Scale == workloads.Small {
		scale = "small"
	}
	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	apps := []struct {
		name string
		w    core.Workload
	}{
		{"2jpeg+canny", workloads.JPEGCanny(cfg.Scale, nil)},
		{"mpeg2", workloads.MPEG2(cfg.Scale, nil)},
	}
	engines := []platform.Engine{platform.EngineLineMerged, platform.EngineWordExact}

	measure := func(name string, fn func() error) error {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("bench %s: %w", name, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:       name,
			Iterations: iters,
			NsPerOp:    best.Nanoseconds(),
			MsPerOp:    float64(best.Nanoseconds()) / 1e6,
		})
		return nil
	}

	for _, app := range apps {
		// One optimize per app provides the partitioned runs' allocation.
		opt, err := core.Optimize(app.w, cfg.OptimizeConfig())
		if err != nil {
			return err
		}
		// The trace stages: capture cost (one live functional run plus
		// encoding), and the warm profiling pipeline driven by replay —
		// the path every scenario stage takes once the trace exists.
		var tr *tracefile.Trace
		if err := measure(fmt.Sprintf("trace-capture-%s", app.name), func() error {
			var err error
			tr, err = tracefile.Capture(app.w, tracefile.Meta{Workload: app.name, Scale: scale})
			return err
		}); err != nil {
			return err
		}
		if err := measure(fmt.Sprintf("trace-replay-profile-%s", app.name), func() error {
			oc := cfg.OptimizeConfig()
			oc.Runs = 1
			_, err := core.Profile(tr.Workload(app.name), oc)
			return err
		}); err != nil {
			return err
		}
		for _, eng := range engines {
			pc := cfg.Platform
			pc.Engine = eng
			w := app.w
			if err := measure(fmt.Sprintf("run-shared-%s/%s", app.name, eng), func() error {
				_, err := core.Run(w, core.RunConfig{Platform: pc})
				return err
			}); err != nil {
				return err
			}
			if err := measure(fmt.Sprintf("run-partitioned-%s/%s", app.name, eng), func() error {
				_, err := core.Run(w, core.RunConfig{Platform: pc, Strategy: core.Partitioned, Alloc: opt.Allocation})
				return err
			}); err != nil {
				return err
			}
			if err := measure(fmt.Sprintf("profile-pipeline-%s/%s", app.name, eng), func() error {
				oc := cfg.OptimizeConfig()
				oc.Platform.Engine = eng
				oc.Runs = 1
				_, err := core.Profile(w, oc)
				return err
			}); err != nil {
				return err
			}
		}
	}

	// The batch stages: the whole paper-grid sweep through a fresh
	// runner, measured first as aggregate points/sec at the harness's
	// -workers setting (fresh runner per iteration so the memo never
	// warms across iterations — this is the cold fleet cost), then once
	// more instrumented with runtime.ReadMemStats for bytes allocated
	// and GC cycles per point.
	gridSweep, ok := experiments.BuiltinSweep(cfg, experiments.SweepPaperGrid)
	if !ok {
		return fmt.Errorf("bench: built-in sweep %q missing", experiments.SweepPaperGrid)
	}
	runGrid := func() (int, error) {
		rn := scenario.NewRunner(cfg.Workers)
		res, err := sweep.Execute(context.Background(), rn, gridSweep, nil)
		if err != nil {
			return 0, err
		}
		if res.Failed > 0 {
			return 0, fmt.Errorf("paper-grid: %d points failed", res.Failed)
		}
		return res.Executed, nil
	}
	{
		best := time.Duration(1<<63 - 1)
		points := 0
		for i := 0; i < iters; i++ {
			start := time.Now()
			n, err := runGrid()
			if err != nil {
				return fmt.Errorf("bench batch-throughput: %w", err)
			}
			points = n
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:         "batch-throughput-paper-grid",
			Iterations:   iters,
			NsPerOp:      best.Nanoseconds() / int64(max(points, 1)),
			MsPerOp:      float64(best.Nanoseconds()) / 1e6 / float64(max(points, 1)),
			Points:       points,
			PointsPerSec: float64(points) / best.Seconds(),
		})
	}
	{
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		points, err := runGrid()
		if err != nil {
			return fmt.Errorf("bench gc-pressure: %w", err)
		}
		dur := time.Since(start)
		runtime.ReadMemStats(&after)
		n := int64(max(points, 1))
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:          "gc-pressure-paper-grid",
			Iterations:    1,
			NsPerOp:       dur.Nanoseconds() / n,
			MsPerOp:       float64(dur.Nanoseconds()) / 1e6 / float64(n),
			Points:        points,
			BytesPerPoint: int64(after.TotalAlloc-before.TotalAlloc) / n,
			GCPerPoint:    float64(after.NumGC-before.NumGC) / float64(n),
		})
	}

	// The adaptive-search stage: the same paper grid through the
	// Pareto-guided exploration instead of the exhaustive sweep. Points
	// records how many simulations the search needed to reach the
	// exhaustive fronts — the fraction of the grid the adaptive
	// subsystem saves is exactly what this stage tracks over time.
	{
		best := time.Duration(1<<63 - 1)
		visited := 0
		for i := 0; i < iters; i++ {
			rn := scenario.NewRunner(cfg.Workers)
			start := time.Now()
			res, err := explore.Run(context.Background(), rn, explore.Explore{Name: gridSweep.Name, Sweep: gridSweep}, explore.Options{}, nil)
			d := time.Since(start)
			rn.Close()
			if err != nil {
				return fmt.Errorf("bench explore-paper-grid: %w", err)
			}
			if res.Failed > 0 {
				return fmt.Errorf("explore paper-grid: %d points failed", res.Failed)
			}
			visited = res.Visited
			if d < best {
				best = d
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:         "explore-paper-grid",
			Iterations:   iters,
			NsPerOp:      best.Nanoseconds() / int64(max(visited, 1)),
			MsPerOp:      float64(best.Nanoseconds()) / 1e6 / float64(max(visited, 1)),
			Points:       visited,
			PointsPerSec: float64(visited) / best.Seconds(),
		})
	}

	// The 3-level l3-shared tree next to the 2-level runs, so the
	// per-level walk cost shows up in the BENCH_* trajectory.
	l3w := workloads.JPEGCanny(cfg.Scale, nil)
	for _, eng := range engines {
		pc := cfg.Platform
		pc.Topology = experiments.L3SharedTopology()
		pc.Engine = eng
		if err := measure(fmt.Sprintf("run-shared-l3-2jpeg+canny/%s", eng), func() error {
			_, err := core.Run(l3w, core.RunConfig{Platform: pc})
			return err
		}); err != nil {
			return err
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("execution-engine benchmarks (%s scale, best of %d, GOMAXPROCS=%d)\n",
		rep.Scale, iters, rep.GOMAXPROCS)
	for _, b := range rep.Benchmarks {
		fmt.Printf("  %-44s %10.1f ms", b.Name, b.MsPerOp)
		if b.Points > 0 {
			fmt.Printf("  (%d pts", b.Points)
			if b.PointsPerSec > 0 {
				fmt.Printf(", %.2f pts/s", b.PointsPerSec)
			}
			if b.BytesPerPoint > 0 {
				fmt.Printf(", %.1f MB/pt, %.1f GC/pt", float64(b.BytesPerPoint)/1e6, b.GCPerPoint)
			}
			fmt.Printf(")")
		}
		fmt.Println()
	}
	return nil
}
